// PolicyEngine x advice integration: a stub AdviceProvider exercises
// the engine-side guidance mechanics (pin parking, bypass claims,
// demote-first reclaim, online reconfiguration) independently of the
// adapt heuristics, which have their own suite in test_adapt.cpp.

#include <gtest/gtest.h>

#include <unordered_map>

#include "instant_executor.hpp"
#include "ooc/policy_engine.hpp"

namespace hmr::ooc {
namespace {

using hmr::testing::InstantExecutor;

class StubAdvisor final : public AdviceProvider {
public:
  BlockAdvice advise(BlockId b, std::uint64_t) const override {
    const auto it = advice_.find(b);
    return it == advice_.end() ? BlockAdvice{} : it->second;
  }
  void set(BlockId b, BlockAdvice a) { advice_[b] = a; }
  void clear(BlockId b) { advice_.erase(b); }

private:
  std::unordered_map<BlockId, BlockAdvice> advice_;
};

PolicyEngine::Config cfg(Strategy s, std::uint64_t cap,
                         const AdviceProvider* adv, bool eager = true,
                         int pes = 2) {
  PolicyEngine::Config c;
  c.strategy = s;
  c.num_pes = pes;
  c.fast_capacity = cap;
  c.eager_evict = eager;
  c.advisor = adv;
  return c;
}

TaskDesc make_task(TaskId id, std::int32_t pe, std::vector<Dep> deps) {
  TaskDesc t;
  t.id = id;
  t.pe = pe;
  t.deps = std::move(deps);
  return t;
}

TEST(PolicyAdvice, PinParksWarmUnderEagerAndSavesRefetch) {
  StubAdvisor adv;
  adv.set(0, {.pin = true});
  PolicyEngine e(cfg(Strategy::MultiIo, 100, &adv));
  e.add_block(0, 50);
  InstantExecutor x(e);
  x.arrive(make_task(1, 0, {{0, AccessMode::ReadOnly}}));
  // Eager mode would evict at refcount 0; the pin parks it instead.
  EXPECT_EQ(x.evicts.size(), 0u);
  EXPECT_EQ(e.block_state(0), BlockState::InFast);
  EXPECT_EQ(e.lru_size(), 1u);
  EXPECT_EQ(e.lru_bytes(), 50u);
  EXPECT_EQ(e.stats().advised_pins, 1u);
  // The next consumer reuses the warm copy: no second fetch.
  x.arrive(make_task(2, 1, {{0, AccessMode::ReadOnly}}));
  EXPECT_EQ(x.fetches.size(), 1u);
  EXPECT_EQ(e.stats().lru_reclaims, 1u);
  EXPECT_EQ(x.run_order.size(), 2u);
  EXPECT_TRUE(e.quiescent());
}

TEST(PolicyAdvice, PinnedBlockYieldsWhenAdmissionNeedsSpace) {
  // A pin is a preference, not a reservation: when the only way to
  // admit the next task is evicting a pinned parked block, it goes.
  StubAdvisor adv;
  adv.set(0, {.pin = true});
  PolicyEngine e(cfg(Strategy::MultiIo, 100, &adv));
  e.add_block(0, 60);
  e.add_block(1, 60);
  InstantExecutor x(e);
  x.arrive(make_task(1, 0, {{0, AccessMode::ReadOnly}}));
  ASSERT_EQ(e.lru_size(), 1u);
  x.arrive(make_task(2, 0, {{1, AccessMode::ReadOnly}}));
  // Two evictions: the pinned block 0 reclaimed to make room, then
  // block 1's ordinary eager eviction after task 2 completes.
  ASSERT_EQ(x.evicts.size(), 2u);
  EXPECT_EQ(x.evicts[0].block, 0u);
  EXPECT_EQ(x.evicts[1].block, 1u);
  EXPECT_EQ(x.run_order.size(), 2u);
  EXPECT_EQ(e.block_state(0), BlockState::InSlow);
  EXPECT_TRUE(e.quiescent());
}

TEST(PolicyAdvice, DemoteAdvisedBlockIsReclaimedBeforeColderOnes) {
  StubAdvisor adv;
  adv.set(1, {.demote_first = true});
  PolicyEngine e(cfg(Strategy::MultiIo, 100, &adv, /*eager=*/false));
  e.add_block(0, 40);
  e.add_block(1, 40);
  e.add_block(2, 40);
  InstantExecutor x(e);
  // Park 0 then 1 (0 is the colder LRU victim by order).
  x.arrive(make_task(1, 0, {{0, AccessMode::ReadOnly}}));
  x.arrive(make_task(2, 0, {{1, AccessMode::ReadOnly}}));
  ASSERT_EQ(e.lru_size(), 2u);
  // Admitting block 2 needs 20 bytes: plain LRU would evict 0, the
  // demote advice sends 1 first.
  x.arrive(make_task(3, 0, {{2, AccessMode::ReadOnly}}));
  ASSERT_GE(x.evicts.size(), 1u);
  EXPECT_EQ(x.evicts[0].block, 1u);
  EXPECT_EQ(e.stats().advised_demotions, 1u);
  EXPECT_EQ(e.block_state(0), BlockState::InFast); // still parked warm
  EXPECT_EQ(x.run_order.size(), 3u);
}

TEST(PolicyAdvice, BypassRunsFromSlowTierWithoutFetching) {
  StubAdvisor adv;
  adv.set(0, {.bypass_fetch = true});
  PolicyEngine e(cfg(Strategy::MultiIo, 100, &adv));
  e.add_block(0, 50);
  InstantExecutor x(e, /*auto_run=*/false);
  x.arrive(make_task(1, 0, {{0, AccessMode::ReadOnly}}));
  EXPECT_EQ(x.fetches.size(), 0u);
  ASSERT_EQ(x.runnable.size(), 1u);
  EXPECT_EQ(e.block_state(0), BlockState::InSlow);
  EXPECT_EQ(e.refcount(0), 1u);
  EXPECT_EQ(e.fast_used(), 0u);
  EXPECT_EQ(e.stats().advised_bypasses, 1u);
  x.complete(1);
  EXPECT_TRUE(e.quiescent());
  EXPECT_EQ(e.stats().fetches, 0u);
  EXPECT_EQ(e.stats().evicts, 0u);
}

TEST(PolicyAdvice, ActiveSlowClaimForcesLaterTasksOntoBypass) {
  // Once a task reads a block from the slow tier, fetching it would
  // free the copy under the reader: later admissions must bypass too,
  // even if the advice has changed its mind meanwhile.
  StubAdvisor adv;
  adv.set(0, {.bypass_fetch = true});
  PolicyEngine e(cfg(Strategy::MultiIo, 100, &adv));
  e.add_block(0, 50);
  InstantExecutor x(e, /*auto_run=*/false);
  x.arrive(make_task(1, 0, {{0, AccessMode::ReadOnly}}));
  ASSERT_EQ(x.runnable.size(), 1u);
  adv.clear(0); // advice flips between events; the claim must win
  x.arrive(make_task(2, 1, {{0, AccessMode::ReadOnly}}));
  EXPECT_EQ(x.fetches.size(), 0u);
  EXPECT_EQ(x.runnable.size(), 2u);
  EXPECT_EQ(e.stats().advised_bypasses, 2u);
  x.complete(1);
  x.complete(2);
  EXPECT_TRUE(e.quiescent());
  EXPECT_EQ(e.block_state(0), BlockState::InSlow);
  // With the claims gone the flipped advice applies again: task 3
  // fetches normally.
  x.arrive(make_task(3, 0, {{0, AccessMode::ReadOnly}}));
  EXPECT_EQ(x.fetches.size(), 1u);
}

TEST(PolicyAdvice, SetEagerEvictFlushesLruButKeepsPinned) {
  StubAdvisor adv;
  adv.set(0, {.pin = true});
  PolicyEngine e(cfg(Strategy::MultiIo, 100, &adv, /*eager=*/false));
  e.add_block(0, 30);
  e.add_block(1, 30);
  InstantExecutor x(e);
  x.arrive(make_task(1, 0, {{0, AccessMode::ReadOnly}}));
  x.arrive(make_task(2, 0, {{1, AccessMode::ReadOnly}}));
  ASSERT_EQ(e.lru_size(), 2u);
  x.drive(e.set_eager_evict(true));
  EXPECT_TRUE(e.config().eager_evict);
  // Only the unpinned parked block was flushed back to the slow tier.
  EXPECT_EQ(e.lru_size(), 1u);
  EXPECT_EQ(e.block_state(0), BlockState::InFast);
  EXPECT_EQ(e.block_state(1), BlockState::InSlow);
  // No-op when the value does not change.
  EXPECT_TRUE(e.set_eager_evict(true).empty());
}

TEST(PolicyAdvice, SetLruWatermarkEvictsDownToTheCap) {
  PolicyEngine e(cfg(Strategy::MultiIo, 100, nullptr, /*eager=*/false));
  e.add_block(0, 40);
  e.add_block(1, 40);
  InstantExecutor x(e);
  x.arrive(make_task(1, 0, {{0, AccessMode::ReadOnly}}));
  x.arrive(make_task(2, 0, {{1, AccessMode::ReadOnly}}));
  ASSERT_EQ(e.lru_bytes(), 80u);
  x.drive(e.set_lru_watermark(0.5)); // cap = 50 bytes
  EXPECT_EQ(e.lru_bytes(), 40u);
  // Coldest went first.
  EXPECT_EQ(e.block_state(0), BlockState::InSlow);
  EXPECT_EQ(e.block_state(1), BlockState::InFast);
  EXPECT_DEATH(e.set_lru_watermark(0.0), "watermark");
}

TEST(PolicyAdvice, SetStrategyTogglesWorkerEviction) {
  PolicyEngine e(cfg(Strategy::MultiIo, 100, nullptr));
  EXPECT_FALSE(e.config().evict_by_worker);
  e.set_strategy(Strategy::SyncNoIo);
  EXPECT_EQ(e.config().strategy, Strategy::SyncNoIo);
  EXPECT_TRUE(e.config().evict_by_worker); // SyncNoIo forces it
  e.set_strategy(Strategy::SingleIo);
  EXPECT_FALSE(e.config().evict_by_worker); // restored to the base
  EXPECT_DEATH(e.set_strategy(Strategy::HbmOnly), "movement strategies");
}

TEST(PolicyAdvice, SetStrategyRequiresQuiescence) {
  PolicyEngine e(cfg(Strategy::MultiIo, 100, nullptr));
  e.add_block(0, 50);
  auto cmds = e.on_task_arrived(make_task(1, 0, {{0, AccessMode::ReadWrite}}));
  ASSERT_FALSE(cmds.empty()); // fetch in flight
  EXPECT_DEATH(e.set_strategy(Strategy::SingleIo), "quiescent");
}

TEST(PolicyAdvice, SwitchingStrategiesMidStreamKeepsProtocolSound) {
  // Run a few tasks, switch strategy at quiescence, run a few more —
  // accounting identities must hold across the switch.
  PolicyEngine e(cfg(Strategy::SingleIo, 200, nullptr, true, /*pes=*/4));
  for (BlockId b = 0; b < 6; ++b) e.add_block(b, 40);
  InstantExecutor x(e);
  for (TaskId t = 1; t <= 8; ++t) {
    x.arrive(make_task(t, static_cast<std::int32_t>(t % 4),
                       {{t % 6, AccessMode::ReadWrite}}));
  }
  ASSERT_TRUE(e.quiescent());
  e.set_strategy(Strategy::SyncNoIo);
  for (TaskId t = 9; t <= 16; ++t) {
    x.arrive(make_task(t, static_cast<std::int32_t>(t % 4),
                       {{t % 6, AccessMode::ReadWrite}}));
  }
  EXPECT_TRUE(e.quiescent());
  const auto& s = e.stats();
  EXPECT_EQ(s.tasks_run, 16u);
  EXPECT_EQ(s.fetch_bytes, s.evict_bytes);
  EXPECT_EQ(e.fast_used(), 0u);
}

} // namespace
} // namespace hmr::ooc
