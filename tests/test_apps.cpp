// Numerical validation of the chare applications against serial
// references, across scheduling strategies and decompositions.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/block_matmul.hpp"
#include "apps/reference.hpp"
#include "apps/stencil3d.hpp"
#include "rt/runtime.hpp"

namespace hmr::apps {
namespace {

rt::Runtime::Config cfg(ooc::Strategy s, int pes = 2,
                        double scale = 1.0 / 4096) {
  rt::Runtime::Config c;
  c.strategy = s;
  c.num_pes = pes;
  c.mem_scale = scale;
  return c;
}

void expect_grids_equal(const std::vector<double>& a,
                        const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Same arithmetic in the same order: bitwise equality expected.
    ASSERT_EQ(a[i], b[i]) << "at " << i;
  }
}

class StencilStrategies : public ::testing::TestWithParam<ooc::Strategy> {};

TEST_P(StencilStrategies, MatchesSerialReference) {
  StencilParams p;
  p.nx = p.ny = p.nz = 24;
  p.cx = p.cy = p.cz = 2;
  p.iterations = 3;
  rt::Runtime rt(cfg(GetParam(), /*pes=*/4));
  Stencil3D app(rt, p);

  std::vector<double> ref(static_cast<std::size_t>(p.nx) * p.ny * p.nz);
  fill_pattern(ref.data(), ref.size(), p.seed);
  serial_stencil3d(ref, p.nx, p.ny, p.nz, p.iterations);

  app.run();
  expect_grids_equal(app.gather(), ref);
}

INSTANTIATE_TEST_SUITE_P(
    All, StencilStrategies,
    ::testing::Values(ooc::Strategy::Naive, ooc::Strategy::SingleIo,
                      ooc::Strategy::SyncNoIo, ooc::Strategy::MultiIo),
    [](const auto& pi) { return ooc::strategy_name(pi.param); });

TEST(Stencil3D, AsymmetricDecomposition) {
  StencilParams p;
  p.nx = 24;
  p.ny = 12;
  p.nz = 8;
  p.cx = 3;
  p.cy = 2;
  p.cz = 1;
  p.iterations = 2;
  rt::Runtime rt(cfg(ooc::Strategy::MultiIo, 3));
  Stencil3D app(rt, p);
  std::vector<double> ref(static_cast<std::size_t>(p.nx) * p.ny * p.nz);
  fill_pattern(ref.data(), ref.size(), p.seed);
  serial_stencil3d(ref, p.nx, p.ny, p.nz, p.iterations);
  app.run();
  expect_grids_equal(app.gather(), ref);
}

TEST(Stencil3D, SingleChareDegenerateCase) {
  StencilParams p;
  p.nx = p.ny = p.nz = 8;
  p.cx = p.cy = p.cz = 1;
  p.iterations = 2;
  rt::Runtime rt(cfg(ooc::Strategy::MultiIo, 1));
  Stencil3D app(rt, p);
  std::vector<double> ref(static_cast<std::size_t>(p.nx) * p.ny * p.nz);
  fill_pattern(ref.data(), ref.size(), p.seed);
  serial_stencil3d(ref, p.nx, p.ny, p.nz, p.iterations);
  app.run();
  expect_grids_equal(app.gather(), ref);
}

TEST(Stencil3D, StepByStepMatchesRun) {
  StencilParams p;
  p.nx = p.ny = p.nz = 16;
  p.cx = p.cy = p.cz = 2;
  p.iterations = 3;
  rt::Runtime rt_a(cfg(ooc::Strategy::MultiIo, 2));
  rt::Runtime rt_b(cfg(ooc::Strategy::MultiIo, 2));
  Stencil3D a(rt_a, p), b(rt_b, p);
  a.run();
  for (int i = 0; i < p.iterations; ++i) b.step();
  expect_grids_equal(a.gather(), b.gather());
}

TEST(Stencil3D, SmoothingContractsMax) {
  StencilParams p;
  p.nx = p.ny = p.nz = 8;
  p.cx = p.cy = p.cz = 2;
  p.iterations = 2;
  rt::Runtime rt(cfg(ooc::Strategy::MultiIo, 2));
  Stencil3D app(rt, p);
  // Smoothing with Dirichlet-0 boundary strictly contracts the max.
  const auto before = app.gather();
  double max_before = 0;
  for (double v : before) max_before = std::max(max_before, std::fabs(v));
  app.run();
  double max_after = 0;
  for (double v : app.gather()) max_after = std::max(max_after, std::fabs(v));
  EXPECT_LT(max_after, max_before);
}

void expect_matrices_close(const std::vector<double>& a,
                           const std::vector<double>& b, double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a[i], b[i], tol) << "at " << i;
  }
}

class MatmulStrategies : public ::testing::TestWithParam<ooc::Strategy> {};

TEST_P(MatmulStrategies, MatchesSerialReference) {
  MatmulParams p;
  p.n = 64;
  p.grid = 4;
  rt::Runtime rt(cfg(GetParam(), /*pes=*/4));
  BlockMatmul app(rt, p);
  app.run();

  std::vector<double> ref;
  serial_matmul(app.input_a(), app.input_b(), ref, p.n);
  // Tiled accumulation reassociates the k-sum: tolerance, not equality.
  expect_matrices_close(app.result(), ref, 1e-10 * p.n);
}

INSTANTIATE_TEST_SUITE_P(
    All, MatmulStrategies,
    ::testing::Values(ooc::Strategy::Naive, ooc::Strategy::SingleIo,
                      ooc::Strategy::SyncNoIo, ooc::Strategy::MultiIo),
    [](const auto& pi) { return ooc::strategy_name(pi.param); });

TEST(BlockMatmul, GemmTileMatchesNaive) {
  constexpr int t = 16;
  std::vector<double> a(t * t), b(t * t), c(t * t, 0.0), ref;
  fill_pattern(a.data(), a.size(), 11);
  fill_pattern(b.data(), b.size(), 12);
  BlockMatmul::gemm_tile(a.data(), b.data(), c.data(), t);
  serial_matmul(a, b, ref, t);
  expect_matrices_close(c, ref, 1e-12);
}

TEST(BlockMatmul, AccumulatesAcrossCalls) {
  constexpr int t = 8;
  std::vector<double> a(t * t), b(t * t), c(t * t, 0.0), ref;
  fill_pattern(a.data(), a.size(), 21);
  fill_pattern(b.data(), b.size(), 22);
  BlockMatmul::gemm_tile(a.data(), b.data(), c.data(), t);
  BlockMatmul::gemm_tile(a.data(), b.data(), c.data(), t);
  serial_matmul(a, b, ref, t);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(c[i], 2 * ref[i], 1e-12);
  }
}

TEST(BlockMatmul, ReuseShowsUpInPolicyStats) {
  MatmulParams p;
  p.n = 64;
  p.grid = 4;
  rt::Runtime rt(cfg(ooc::Strategy::SingleIo, 2));
  BlockMatmul app(rt, p);
  app.run();
  const auto st = rt.policy_stats();
  EXPECT_EQ(st.tasks_run, 64u); // G^3
  // 192 dependence claims, but read-only sharing keeps fetch count low.
  EXPECT_LT(st.fetches, 192u);
  EXPECT_GT(st.fetch_dedup_hits, 0u);
}

TEST(Reference, SerialStencilConservesNothingButIsStable) {
  std::vector<double> g(8 * 8 * 8);
  fill_pattern(g.data(), g.size(), 3);
  const auto copy = g;
  serial_stencil3d(g, 8, 8, 8, 0); // zero iterations: unchanged
  EXPECT_EQ(g, copy);
  serial_stencil3d(g, 8, 8, 8, 1);
  EXPECT_NE(g, copy);
}

TEST(Reference, SerialMatmulIdentity) {
  constexpr int n = 8;
  std::vector<double> a(n * n, 0.0), b(n * n), c;
  for (int i = 0; i < n; ++i) a[static_cast<std::size_t>(i) * n + i] = 1.0;
  fill_pattern(b.data(), b.size(), 5);
  serial_matmul(a, b, c, n);
  for (std::size_t i = 0; i < b.size(); ++i) ASSERT_EQ(c[i], b[i]);
}

} // namespace
} // namespace hmr::apps
