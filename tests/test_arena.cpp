// Unit and property tests for the TierArena free-list allocator.

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "mem/arena.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace hmr::mem {
namespace {

TEST(TierArena, AllocWithinCapacity) {
  TierArena a("t", 1 * MiB);
  void* p = a.alloc(512 * KiB);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(a.owns(p));
  EXPECT_EQ(a.used(), 512 * KiB);
  a.free(p);
  EXPECT_EQ(a.used(), 0u);
  EXPECT_FALSE(a.owns(p));
}

TEST(TierArena, AllocationsAreAligned) {
  TierArena a("t", 1 * MiB, 64);
  for (std::uint64_t sz : {1ull, 7ull, 63ull, 65ull, 4096ull}) {
    void* p = a.alloc(sz);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
  }
}

TEST(TierArena, ReturnsNullWhenFull) {
  TierArena a("t", 256 * KiB);
  void* p1 = a.alloc(128 * KiB);
  void* p2 = a.alloc(128 * KiB);
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(a.alloc(64), nullptr);
  a.free(p1);
  EXPECT_NE(a.alloc(64 * KiB), nullptr);
}

TEST(TierArena, CoalescingAllowsFullReuse) {
  TierArena a("t", 1 * MiB);
  std::vector<void*> ps;
  for (int i = 0; i < 16; ++i) {
    void* p = a.alloc(64 * KiB);
    ASSERT_NE(p, nullptr);
    ps.push_back(p);
  }
  // Free in an interleaved order; ranges must coalesce back to one.
  for (int i = 0; i < 16; i += 2) a.free(ps[static_cast<std::size_t>(i)]);
  for (int i = 1; i < 16; i += 2) a.free(ps[static_cast<std::size_t>(i)]);
  EXPECT_EQ(a.used(), 0u);
  EXPECT_EQ(a.largest_free_range(), 1 * MiB);
  EXPECT_NE(a.alloc(1 * MiB), nullptr);
}

TEST(TierArena, HighWaterTracksPeak) {
  TierArena a("t", 1 * MiB);
  void* p = a.alloc(768 * KiB);
  a.free(p);
  (void)a.alloc(64 * KiB);
  EXPECT_EQ(a.high_water(), 768 * KiB);
}

TEST(TierArena, ZeroCapacityArenaRejectsAll) {
  TierArena a("empty", 0);
  EXPECT_EQ(a.alloc(1), nullptr);
}

TEST(TierArena, DoubleFreeDies) {
  TierArena a("t", 1 * MiB);
  void* p = a.alloc(1024);
  a.free(p);
  EXPECT_DEATH(a.free(p), "double free");
}

TEST(TierArena, ForeignPointerDies) {
  TierArena a("t", 1 * MiB);
  int x = 0;
  EXPECT_DEATH(a.free(&x), "not from this arena");
}

TEST(TierArena, InteriorPointerDies) {
  TierArena a("t", 1 * MiB);
  void* p = a.alloc(1024);
  EXPECT_DEATH(a.free(static_cast<char*>(p) + 64), "interior");
}

TEST(TierArena, ZeroByteAllocDies) {
  TierArena a("t", 1 * MiB);
  EXPECT_DEATH((void)a.alloc(0), "zero-byte");
}

TEST(TierArena, WritesDoNotOverlap) {
  // Fill two allocations with distinct patterns and verify integrity —
  // catches any overlap bug in offset bookkeeping.
  TierArena a("t", 1 * MiB);
  auto* p1 = static_cast<unsigned char*>(a.alloc(100 * KiB));
  auto* p2 = static_cast<unsigned char*>(a.alloc(100 * KiB));
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  std::memset(p1, 0xAA, 100 * KiB);
  std::memset(p2, 0x55, 100 * KiB);
  for (std::size_t i = 0; i < 100 * KiB; ++i) {
    ASSERT_EQ(p1[i], 0xAA);
    ASSERT_EQ(p2[i], 0x55);
  }
}

// Property sweep: random alloc/free traffic preserves the allocator's
// invariants across size mixes.
class ArenaFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArenaFuzz, RandomTrafficKeepsInvariants) {
  const std::uint64_t seed = GetParam();
  TierArena a("fuzz", 4 * MiB);
  Xoshiro256 rng(seed);
  std::vector<std::pair<void*, std::uint64_t>> live;
  std::uint64_t expected_used = 0;

  for (int step = 0; step < 2000; ++step) {
    const bool do_alloc = live.empty() || rng.uniform() < 0.55;
    if (do_alloc) {
      const std::uint64_t sz = 64 * (1 + rng.below(512)); // 64B..32KiB
      void* p = a.alloc(sz);
      if (p != nullptr) {
        const std::uint64_t rounded = (sz + 63) / 64 * 64;
        live.emplace_back(p, rounded);
        expected_used += rounded;
      } else {
        // Failure is only legal if the request cannot fit anywhere.
        EXPECT_LT(a.largest_free_range(), sz);
      }
    } else {
      const std::size_t i = rng.below(live.size());
      a.free(live[i].first);
      expected_used -= live[i].second;
      live[i] = live.back();
      live.pop_back();
    }
    ASSERT_EQ(a.used(), expected_used);
    ASSERT_EQ(a.live_allocations(), live.size());
    ASSERT_LE(a.used(), a.capacity());
  }
  for (auto& [p, sz] : live) a.free(p);
  EXPECT_EQ(a.used(), 0u);
  EXPECT_EQ(a.largest_free_range(), a.capacity());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArenaFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ------------------------------------------------- backing regions

TEST(TierArenaBacking, DefaultIsNewDelete) {
  TierArena a("t", 1 * MiB);
  EXPECT_EQ(a.backing(), ArenaBacking::NewDelete);
  EXPECT_STREQ(a.backing_name(), "new[]");
  EXPECT_EQ(a.bound_node(), -1);
}

TEST(TierArenaBacking, MmapRegionAllocatesAndFrees) {
  ArenaOptions opts;
  opts.backing = ArenaBacking::Mmap;
  TierArena a("t", 1 * MiB, 64, opts);
  EXPECT_EQ(a.backing(), ArenaBacking::Mmap);
  EXPECT_STREQ(a.backing_name(), "mmap");
  auto* p = static_cast<unsigned char*>(a.alloc(256 * KiB));
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(a.owns(p));
  std::memset(p, 0xC3, 256 * KiB);
  for (std::size_t i = 0; i < 256 * KiB; i += 4096) ASSERT_EQ(p[i], 0xC3);
  a.free(p);
  EXPECT_EQ(a.used(), 0u);
}

TEST(TierArenaBacking, MmapFallsBackWhenAlignmentExceedsPage) {
  // mmap only guarantees page alignment; a larger arena alignment has
  // to fall back to aligned operator new rather than hand out slots
  // that violate the alignment contract.
  ArenaOptions opts;
  opts.backing = ArenaBacking::Mmap;
  TierArena a("t", 1 * MiB, 1u << 20, opts);
  EXPECT_EQ(a.backing(), ArenaBacking::NewDelete);
  void* p = a.alloc(64 * KiB);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % (1u << 20), 0u);
  a.free(p);
}

TEST(TierArenaBacking, NumaBindRequestIsGracefulWithoutLibnuma) {
  // numa_node >= 0 without libnuma (or on a single-node host) must
  // still produce a working arena; the binding is best-effort.
  ArenaOptions opts;
  opts.backing = ArenaBacking::Mmap;
  opts.numa_node = 0;
  TierArena a("t", 1 * MiB, 64, opts);
  void* p = a.alloc(64 * KiB);
  ASSERT_NE(p, nullptr);
  a.free(p);
#if !defined(HMR_HAVE_NUMA)
  EXPECT_EQ(a.bound_node(), -1);
#endif
}

TEST(TierArenaBacking, LargestFreeRangeIndexSurvivesMmapTraffic) {
  ArenaOptions opts;
  opts.backing = ArenaBacking::Mmap;
  TierArena a("t", 4 * MiB, 64, opts);
  Xoshiro256 rng(99);
  std::vector<void*> live;
  for (int step = 0; step < 500; ++step) {
    if (live.empty() || rng.uniform() < 0.6) {
      if (void* p = a.alloc(64 * (1 + rng.below(256)))) live.push_back(p);
    } else {
      const std::size_t i = rng.below(live.size());
      a.free(live[i]);
      live[i] = live.back();
      live.pop_back();
    }
  }
  for (void* p : live) a.free(p);
  EXPECT_EQ(a.largest_free_range(), a.capacity());
}

} // namespace
} // namespace hmr::mem
