// Tests for the bottleneck attribution plane: per-task stall
// accounting (decompose_wait + AttributionTable), critical-path
// extraction and phase verdicts, the what-if hardware estimator, and
// cluster metrics federation — plus the executors' integration
// (buckets sum to wall, rollups exported as metrics).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <random>
#include <set>
#include <sstream>

#include "cluster/cluster_sim.hpp"
#include "rt/io_handle.hpp"
#include "rt/runtime.hpp"
#include "sim/sim_executor.hpp"
#include "sim/stencil_workload.hpp"
#include "telemetry/attrib.hpp"
#include "telemetry/critpath.hpp"
#include "telemetry/federate.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/perfetto.hpp"
#include "util/json.hpp"
#include "util/units.hpp"

namespace hmr {
namespace {

using telemetry::AttributionTable;
using telemetry::Bucket;
using telemetry::TaskAttribution;
using telemetry::WaitSegment;

double bucket(const TaskAttribution& a, Bucket b) {
  return a.seconds[static_cast<int>(b)];
}

// ---------------------------------------------------------- decompose_wait

TEST(DecomposeWait, DisjointSegmentsFillTheirBuckets) {
  TaskAttribution a;
  a.arrive = 0;
  a.start = 1.0;
  a.end = 1.5;
  std::vector<WaitSegment> segs = {
      {0.0, 0.3, 2, 1, false, false, 5},  // local fetch of block 5
      {0.5, 0.7, 1, 2, false, true, 9},   // forced eviction
      {0.8, 0.9, 3, 1, true, false, 7},   // remote fetch
  };
  telemetry::decompose_wait(a, segs);
  EXPECT_DOUBLE_EQ(bucket(a, Bucket::Compute), 0.5);
  EXPECT_DOUBLE_EQ(bucket(a, Bucket::FetchWait), 0.3);
  EXPECT_DOUBLE_EQ(bucket(a, Bucket::EvictStall), 0.2);
  EXPECT_DOUBLE_EQ(bucket(a, Bucket::RemoteSerial), 0.1);
  EXPECT_NEAR(bucket(a, Bucket::QueueWait), 0.4, 1e-12);
  EXPECT_NEAR(a.bucket_sum(), a.wall(), 1e-12);

  // Per-pair and per-block coverage.
  ASSERT_EQ(a.pairs.size(), 3u);
  ASSERT_EQ(a.blocks.size(), 3u);
  double p21 = 0;
  for (const auto& p : a.pairs) {
    if (p.src == 2 && p.dst == 1) p21 = p.seconds;
  }
  EXPECT_DOUBLE_EQ(p21, 0.3);
}

TEST(DecomposeWait, OverlapPriorityRemoteOverFetchOverEvict) {
  TaskAttribution a;
  a.arrive = 0;
  a.start = 1.0;
  a.end = 1.0; // zero compute; only the wait window matters
  std::vector<WaitSegment> segs = {
      {0.0, 0.5, 3, 1, true, false, 1},  // remote
      {0.2, 0.6, 0, 1, false, false, 2}, // local fetch overlapping it
      {0.1, 0.8, 1, 0, false, true, 3},  // eviction overlapping both
  };
  telemetry::decompose_wait(a, segs);
  EXPECT_DOUBLE_EQ(bucket(a, Bucket::RemoteSerial), 0.5);
  // fetch coverage [0, 0.6] minus the remote's 0.5.
  EXPECT_NEAR(bucket(a, Bucket::FetchWait), 0.1, 1e-12);
  // everything covered [0, 0.8] minus fetch∪remote [0, 0.6].
  EXPECT_NEAR(bucket(a, Bucket::EvictStall), 0.2, 1e-12);
  EXPECT_NEAR(bucket(a, Bucket::QueueWait), 0.2, 1e-12);
  EXPECT_NEAR(a.bucket_sum(), a.wall(), 1e-12);
}

TEST(DecomposeWait, SegmentsClippedToWaitWindow) {
  TaskAttribution a;
  a.arrive = 1.0;
  a.start = 2.0;
  a.end = 2.5;
  std::vector<WaitSegment> segs = {
      {0.0, 0.9, 0, 1, false, false, 1},  // entirely before arrive
      {1.5, 3.0, 0, 1, false, false, 2},  // clipped to [1.5, 2.0]
      {2.1, 2.4, 0, 1, false, false, 3},  // after start: ignored
  };
  telemetry::decompose_wait(a, segs);
  EXPECT_NEAR(bucket(a, Bucket::FetchWait), 0.5, 1e-12);
  EXPECT_NEAR(bucket(a, Bucket::QueueWait), 0.5, 1e-12);
  EXPECT_NEAR(a.bucket_sum(), a.wall(), 1e-12);
}

TEST(DecomposeWait, NoSegmentsMeansPureQueueWait) {
  TaskAttribution a;
  a.arrive = 0;
  a.start = 2.0;
  a.end = 3.0;
  telemetry::decompose_wait(a, {});
  EXPECT_DOUBLE_EQ(bucket(a, Bucket::QueueWait), 2.0);
  EXPECT_DOUBLE_EQ(bucket(a, Bucket::Compute), 1.0);
  EXPECT_TRUE(a.pairs.empty());
  EXPECT_TRUE(a.blocks.empty());
}

// ------------------------------------------------------- AttributionTable

TaskAttribution make_task(std::uint64_t id, std::int64_t phase,
                          std::uint32_t tenant, double t0) {
  TaskAttribution a;
  a.task = id;
  a.phase = phase;
  a.tenant = tenant;
  a.arrive = t0;
  a.start = t0 + 0.25;
  a.end = t0 + 1.0;
  a.seconds[static_cast<int>(Bucket::Compute)] = 0.75;
  a.seconds[static_cast<int>(Bucket::FetchWait)] = 0.15;
  a.seconds[static_cast<int>(Bucket::QueueWait)] = 0.10;
  a.pairs = {{0, 1, 0.15}};
  a.blocks = {{id % 2, 0.15}};
  return a;
}

TEST(AttributionTable, ShardedRollupMergesEverything) {
  AttributionTable::Options opt;
  opt.shards = 2;
  AttributionTable t(opt);
  t.record(0, make_task(1, 0, 0, 0.0));
  t.record(1, make_task(2, 0, 7, 1.0));
  t.record(0, make_task(3, 1, 7, 2.0));

  const auto r = t.rollup();
  EXPECT_EQ(r.tasks, 3u);
  EXPECT_NEAR(r.wall, 3.0, 1e-12);
  EXPECT_NEAR(r.seconds[static_cast<int>(Bucket::Compute)], 2.25, 1e-12);
  ASSERT_EQ(r.phases.size(), 2u);
  EXPECT_EQ(r.phases[0].phase, 0);
  EXPECT_EQ(r.phases[0].tasks, 2u);
  EXPECT_EQ(r.phases[1].phase, 1);
  ASSERT_EQ(r.tenants.size(), 2u); // tenant 0 and 7, ascending
  EXPECT_EQ(r.tenants[0].tenant, 0u);
  EXPECT_EQ(r.tenants[0].tasks, 1u);
  EXPECT_EQ(r.tenants[1].tenant, 7u);
  EXPECT_EQ(r.tenants[1].tasks, 2u);
  ASSERT_EQ(r.pairs.size(), 1u);
  EXPECT_NEAR(r.pairs[0].seconds, 0.45, 1e-12);
  ASSERT_EQ(r.blocks.size(), 2u);
  // Blocks sorted by descending wait.
  EXPECT_GE(r.blocks[0].seconds, r.blocks[1].seconds);
  EXPECT_EQ(r.sum_violations, 0u);
}

TEST(AttributionTable, SumViolationsAreCounted) {
  AttributionTable t;
  auto a = make_task(1, 0, 0, 0.0);
  a.seconds[static_cast<int>(Bucket::QueueWait)] += 0.5; // break the sum
  t.record(0, a);
  const auto r = t.rollup();
  EXPECT_EQ(r.sum_violations, 1u);
  EXPECT_GT(r.worst_rel_err, AttributionTable::kSumTolerance);
}

TEST(AttributionTable, KeepTasksRetainsRecords) {
  AttributionTable off;
  off.record(0, make_task(1, 0, 0, 0.0));
  EXPECT_TRUE(off.tasks().empty());

  AttributionTable::Options opt;
  opt.keep_tasks = true;
  AttributionTable on(opt);
  on.record(0, make_task(1, 0, 0, 0.0));
  on.record(0, make_task(2, 0, 0, 1.0));
  EXPECT_EQ(on.tasks().size(), 2u);
}

TEST(AttributionTable, JsonAndMetricsExports) {
  AttributionTable t;
  t.record(0, make_task(1, 0, 3, 0.0));

  std::ostringstream os;
  t.write_json(os);
  json::Value doc;
  std::string err;
  ASSERT_TRUE(json::parse(os.str(), doc, &err)) << err;
  EXPECT_EQ(doc.find("tasks")->num_or(0), 1);
  ASSERT_NE(doc.find("buckets"), nullptr);
  EXPECT_GT(doc.find("buckets")->find("compute")->num_or(0), 0);
  EXPECT_EQ(doc.find("audit")->find("sum_violations")->num_or(-1), 0);

  telemetry::MetricsRegistry reg;
  t.export_metrics(reg);
  const auto snap = reg.snapshot();
  const auto* tasks = snap.counter("hmr_attrib_tasks_total");
  ASSERT_NE(tasks, nullptr);
  EXPECT_EQ(tasks->value, 1u);
  const auto* compute_ns =
      snap.counter("hmr_attrib_ns_total", "bucket=\"compute\"");
  ASSERT_NE(compute_ns, nullptr);
  EXPECT_NEAR(static_cast<double>(compute_ns->value), 0.75e9, 1e6);
  EXPECT_NE(snap.counter("hmr_attrib_wait_ns_total", "pair=\"0->1\""),
            nullptr);
}

// ----------------------------------------------------- sim integration

TEST(SimAttribution, BucketsSumToWallAcrossARealRun) {
  sim::SimConfig cfg;
  cfg.model = hw::knl_flat_all_to_all();
  cfg.model.num_pes = 8;
  cfg.fast_capacity = 64 * MiB;
  cfg.strategy = ooc::Strategy::MultiIo;
  cfg.attrib = true;
  sim::SimExecutor ex(cfg);
  const sim::StencilWorkload w({.total_bytes = 128 * MiB,
                                .num_chares = 32,
                                .num_pes = 8,
                                .iterations = 2});
  const auto res = ex.run(w);
  ASSERT_NE(ex.attribution(), nullptr);
  const auto r = ex.attribution()->rollup();
  EXPECT_EQ(r.tasks, res.tasks_completed);
  EXPECT_EQ(r.sum_violations, 0u) << "worst " << r.worst_rel_err;
  EXPECT_GT(r.seconds[static_cast<int>(Bucket::Compute)], 0.0);
  // An out-of-core run must show fetch waits on some channel.
  EXPECT_GT(r.seconds[static_cast<int>(Bucket::FetchWait)], 0.0);
  EXPECT_FALSE(r.pairs.empty());
  // One phase row per iteration.
  EXPECT_EQ(r.phases.size(), 2u);
}

TEST(SimAttribution, OffByDefaultOnWithMetrics) {
  sim::SimConfig cfg;
  cfg.model = hw::knl_flat_all_to_all();
  cfg.model.num_pes = 4;
  {
    sim::SimExecutor ex(cfg);
    EXPECT_EQ(ex.attribution(), nullptr);
  }
  telemetry::MetricsRegistry reg;
  cfg.metrics = &reg;
  sim::SimExecutor ex(cfg);
  EXPECT_NE(ex.attribution(), nullptr);
  const sim::StencilWorkload w({.total_bytes = 32 * MiB,
                                .num_chares = 8,
                                .num_pes = 4,
                                .iterations = 1});
  ex.run(w);
  const auto snap = reg.snapshot();
  const auto* tasks = snap.counter("hmr_attrib_tasks_total");
  ASSERT_NE(tasks, nullptr);
  EXPECT_GT(tasks->value, 0u);
}

// ------------------------------------------------------ rt integration

TEST(RtAttribution, ThreadedRuntimeDecomposesExactly) {
  rt::Runtime::Config cfg;
  cfg.num_pes = 2;
  cfg.mem_scale = 1.0 / 4096;
  cfg.metrics = true;
  rt::Runtime rt(cfg);
  std::vector<rt::IoHandle<double>> blocks;
  for (int i = 0; i < 8; ++i) blocks.emplace_back(rt, 64 * 1024);
  for (int r = 0; r < 2; ++r) {
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      auto& blk = blocks[i];
      rt.send_prefetch(static_cast<int>(i) % 2,
                       {blk.dep(ooc::AccessMode::ReadWrite)},
                       [&blk] { blk[0] += 1.0; });
    }
    rt.wait_idle();
  }
  ASSERT_NE(rt.attribution(), nullptr);
  const auto r = rt.attribution()->rollup();
  EXPECT_EQ(r.tasks, 16u);
  EXPECT_EQ(r.sum_violations, 0u) << "worst " << r.worst_rel_err;
  EXPECT_GT(r.wall, 0.0);
}

// Perfetto causal-flow pairing under the sharded (MultiIo) engine: a
// randomized multi-PE workload of first-touch blocks, so every execute
// slice must have been fed by a fetch — the trace must pair them both
// as same-task intervals and as s/f flow arrows in the Perfetto dump.
TEST(RtAttribution, PerfettoFlowsPairEveryExecuteWithItsFetch) {
  rt::Runtime::Config cfg;
  cfg.num_pes = 4;
  cfg.mem_scale = 1.0 / 4096;
  cfg.trace = true;
  rt::Runtime rt(cfg);

  std::mt19937 rng(20260809u);
  std::vector<rt::IoHandle<double>> blocks;
  for (int round = 0; round < 3; ++round) {
    // Fresh blocks each round: first touch always fetches, and no
    // cross-task dedup can swallow a fetch interval.
    const std::size_t base = blocks.size();
    for (int i = 0; i < 12; ++i) blocks.emplace_back(rt, 64 * 1024);
    std::vector<std::size_t> order(12);
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = base + i;
    std::shuffle(order.begin(), order.end(), rng);
    for (std::size_t idx : order) {
      auto& blk = blocks[idx];
      const int pe = static_cast<int>(rng() % 4);
      rt.send_prefetch(pe, {blk.dep(ooc::AccessMode::ReadWrite)},
                       [&blk] { blk[0] = 1.0; });
    }
    rt.wait_idle();
  }

  const auto ivs = rt.tracer().intervals();
  std::set<std::uint64_t> fetch_tasks;
  for (const auto& i : ivs) {
    if (i.cat == trace::Category::Prefetch && i.task != 0 &&
        i.task != ~0ull) {
      fetch_tasks.insert(i.task);
    }
  }
  std::size_t executes = 0;
  for (const auto& i : ivs) {
    if (i.cat != trace::Category::Compute || i.task == 0 ||
        i.task == ~0ull) {
      continue;
    }
    ++executes;
    EXPECT_TRUE(fetch_tasks.count(i.task))
        << "execute of task " << i.task << " has no paired fetch";
  }
  EXPECT_EQ(executes, 36u);

  // The Perfetto dump draws each pairing as an s ... f flow chain.
  std::ostringstream os;
  telemetry::write_perfetto(os, ivs);
  json::Value doc;
  std::string err;
  ASSERT_TRUE(json::parse(os.str(), doc, &err)) << err;
  std::map<std::string, std::set<std::string>> phases_by_task;
  for (const auto& ev : doc.find("traceEvents")->arr) {
    if (ev.find("cat") && ev.find("cat")->str_or("") == "task_flow") {
      phases_by_task[ev.find("name")->str_or("?")].insert(
          ev.find("ph")->str_or("?"));
    }
  }
  EXPECT_GE(phases_by_task.size(), 36u);
  for (const auto& [task, phases] : phases_by_task) {
    EXPECT_TRUE(phases.count("s")) << task << " chain has no start";
    EXPECT_TRUE(phases.count("f")) << task << " chain has no finish";
  }
}

// ------------------------------------------------------- critical path

using trace::Category;
using trace::Interval;

Interval iv(std::int32_t lane, Category cat, double s, double e,
            std::uint64_t task = 0, std::uint32_t src = 0,
            std::uint32_t dst = 0, std::uint64_t bytes = 0) {
  Interval i;
  i.lane = lane;
  i.cat = cat;
  i.start = s;
  i.end = e;
  i.task = task;
  i.src_tier = src;
  i.dst_tier = dst;
  i.bytes = bytes;
  return i;
}

TEST(CriticalPath, WalksSameTaskChainAndAccountsGaps) {
  // fetch(t1) -> compute(t1) || fetch(t2) -> compute(t2); the last
  // compute ends latest, so the chain walks t2's fetch, then jumps.
  const std::vector<Interval> ivs = {
      iv(4, Category::Prefetch, 0.0, 1.0, 1, 0, 1, 1 << 20),
      iv(0, Category::Compute, 1.0, 3.0, 1),
      iv(4, Category::Prefetch, 3.0, 4.0, 2, 0, 1, 1 << 20),
      iv(0, Category::Compute, 4.0, 6.0, 2),
  };
  const auto cp = telemetry::critical_path(ivs);
  EXPECT_DOUBLE_EQ(cp.makespan(), 6.0);
  ASSERT_FALSE(cp.steps.empty());
  // Chronological, ends at the last-finishing interval.
  EXPECT_DOUBLE_EQ(cp.steps.back().iv.end, 6.0);
  for (std::size_t i = 1; i < cp.steps.size(); ++i) {
    EXPECT_LE(cp.steps[i - 1].iv.end, cp.steps[i].iv.start + 1e-12);
  }
  // Steps + gaps + lead tile the makespan exactly.
  EXPECT_NEAR(cp.step_seconds + cp.gap_seconds + cp.lead_seconds,
              cp.makespan(), 1e-9);
  // The compute->fetch dependence is a same-task link.
  bool same_task = false;
  for (const auto& s : cp.steps) {
    if (s.link == telemetry::CritStep::Link::SameTask) same_task = true;
  }
  EXPECT_TRUE(same_task);
  // Migration pair rollup saw the prefetches on the path.
  ASSERT_FALSE(cp.pairs.empty());
  EXPECT_EQ(cp.pairs[0].src, 0u);
  EXPECT_EQ(cp.pairs[0].dst, 1u);
}

TEST(CriticalPath, IgnoresIdleAndHandlesEmpty) {
  EXPECT_TRUE(telemetry::critical_path({}).steps.empty());
  const std::vector<Interval> only_idle = {
      iv(0, Category::Idle, 0.0, 5.0)};
  EXPECT_TRUE(telemetry::critical_path(only_idle).steps.empty());
}

TEST(Verdicts, ComputeBandwidthAndLatency) {
  // Compute-dominated path.
  const auto compute_cp = telemetry::critical_path({
      iv(0, Category::Compute, 0.0, 8.0, 1),
      iv(4, Category::Prefetch, 8.0, 9.0, 1, 0, 1, 1 << 20),
  });
  EXPECT_EQ(telemetry::classify(compute_cp).verdict,
            telemetry::Verdict::ComputeBound);

  // Large transfers dominate: bandwidth-bound (byte heuristic).
  const auto bw_cp = telemetry::critical_path({
      iv(4, Category::Prefetch, 0.0, 6.0, 1, 0, 1, 64 << 20),
      iv(0, Category::Compute, 6.0, 7.0, 1),
  });
  const auto bw = telemetry::classify(bw_cp);
  EXPECT_EQ(bw.verdict, telemetry::Verdict::BandwidthBound);
  EXPECT_GT(bw.bandwidth_seconds, 0.0);

  // Tiny transfers dominate: latency-bound (byte heuristic).
  std::vector<Interval> small;
  for (int i = 0; i < 6; ++i) {
    small.push_back(iv(4, Category::Prefetch, i * 1.0, i * 1.0 + 0.9,
                       static_cast<std::uint64_t>(i + 1), 0, 1, 512));
  }
  small.push_back(iv(0, Category::Compute, 5.9, 6.4, 6));
  const auto lat = telemetry::classify(telemetry::critical_path(small));
  EXPECT_EQ(lat.verdict, telemetry::Verdict::LatencyBound);
}

// ------------------------------------------------------------- what-if

TEST(WhatIf, ApplyDeltaScalesTheRightKnobs) {
  auto m = hw::three_tier_hbm_ddr_nvm();
  m.tiers.push_back({"pool", 1ull << 40, 10 * GB, 10 * GB, 2e-6, -1,
                     /*remote=*/true});
  telemetry::HwDelta d;
  d.name = "combo";
  d.fast_bw_scale = 2.0;
  d.compute_scale = 3.0;
  d.remote_bw_scale = 4.0;
  d.remote_latency_scale = 0.5;
  const auto out = telemetry::apply_delta(m, d);
  EXPECT_DOUBLE_EQ(out.tiers[m.fast].read_bw, m.tiers[m.fast].read_bw * 2);
  EXPECT_DOUBLE_EQ(out.compute_bw_per_pe, m.compute_bw_per_pe * 3);
  EXPECT_DOUBLE_EQ(out.tiers.back().read_bw, 40 * GB);
  EXPECT_DOUBLE_EQ(out.tiers.back().latency, 1e-6);
  // Non-remote, non-fast tiers untouched.
  EXPECT_DOUBLE_EQ(out.tiers[m.slow].read_bw, m.tiers[m.slow].read_bw);
}

TEST(WhatIf, RecostsMigrationSerializationAnalytically) {
  // Two equal tiers so min(src.read, dst.write) is controlled by the
  // single knob we scale.
  hw::MachineModel m;
  m.name = "tiny";
  m.num_pes = 1;
  m.alloc_overhead = 0.5;
  m.tiers = {{"a", 1ull << 30, 10 * GB, 10 * GB, 0, -1, false},
             {"b", 1ull << 30, 10 * GB, 10 * GB, 0, -1, false}};
  m.slow = 0;
  m.fast = 1;

  // One migration step: 0.5 s overhead + 3.5 s serialization.
  const auto cp = telemetry::critical_path({
      iv(4, Category::Prefetch, 0.0, 4.0, 1, 0, 1, 1 << 30),
  });
  telemetry::HwDelta d;
  d.name = "2x both tiers";
  d.tier_bw_scale = {{0, 2.0}, {1, 2.0}};
  const auto r = telemetry::whatif(cp, m, d);
  EXPECT_DOUBLE_EQ(r.base_seconds, 4.0);
  // overhead unchanged, serialization halves: 0.5 + 1.75.
  EXPECT_NEAR(r.predicted_seconds, 2.25, 1e-9);
  EXPECT_NEAR(r.speedup, 4.0 / 2.25, 1e-9);

  // A delta that does not touch this channel predicts no change.
  telemetry::HwDelta noop;
  noop.name = "remote only";
  noop.remote_latency_scale = 0.5;
  EXPECT_NEAR(telemetry::whatif(cp, m, noop).predicted_seconds, 4.0, 1e-9);
}

TEST(WhatIf, ComputeStepsScaleViaTaskBytes) {
  auto m = hw::knl_flat_all_to_all();
  m.num_pes = 1;
  const auto cp = telemetry::critical_path({
      iv(0, Category::Compute, 0.0, 2.0, 42),
  });
  // The task streamed from the fast tier only; doubling fast bw must
  // shrink the roofline time by the model's own ratio.
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> tb;
  tb[42] = {0, 256ull << 20};
  telemetry::HwDelta d;
  d.name = "2x fast bw";
  d.fast_bw_scale = 2.0;
  const auto r = telemetry::whatif(cp, m, d, &tb);
  const double t_old = m.compute_time(tb[42], 1);
  const double t_new =
      telemetry::apply_delta(m, d).compute_time(tb[42], 1);
  EXPECT_NEAR(r.predicted_seconds, 2.0 * (t_new / t_old), 1e-9);
  EXPECT_GT(r.speedup, 1.0);

  // Without task bytes, only an explicit compute_scale applies.
  EXPECT_NEAR(telemetry::whatif(cp, m, d).predicted_seconds, 2.0, 1e-12);
  telemetry::HwDelta c;
  c.name = "2x compute";
  c.compute_scale = 2.0;
  EXPECT_NEAR(telemetry::whatif(cp, m, c).predicted_seconds, 1.0, 1e-12);
}

// ---------------------------------------------------------- federation

TEST(Federation, WeightedAggregateAndJson) {
  telemetry::MetricsRegistry r0;
  r0.counter("hmr_policy_fetches_total", "", "h").add(10);
  r0.gauge("hmr_tier_used_bytes", "level=\"0\"", "h").set(100);
  telemetry::MetricsRegistry r1;
  r1.counter("hmr_policy_fetches_total", "", "h").add(3);
  r1.gauge("hmr_tier_used_bytes", "level=\"0\"", "h").set(7);

  telemetry::Federation fed;
  fed.add("node0", r0.snapshot(), /*weight=*/3);
  fed.add("node3", r1.snapshot());
  EXPECT_EQ(fed.size(), 2u);
  EXPECT_EQ(fed.total_nodes(), 4u);

  const auto agg = fed.aggregate();
  const auto* c = agg.counter("hmr_policy_fetches_total");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, 33u); // 10*3 + 3
  const auto* g = agg.gauge("hmr_tier_used_bytes", "level=\"0\"");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->value, 307.0);

  std::ostringstream os;
  fed.write_json(os);
  json::Value doc;
  std::string err;
  ASSERT_TRUE(json::parse(os.str(), doc, &err)) << err;
  EXPECT_EQ(doc.find("total_nodes")->num_or(0), 4);
  ASSERT_EQ(doc.find("nodes")->arr.size(), 2u);
  EXPECT_EQ(doc.find("nodes")->arr[0].find("node")->str_or(""), "node0");
  ASSERT_NE(doc.find("aggregate"), nullptr);
}

TEST(Federation, ClusterSimFederatesPerGroupSnapshots) {
  cluster::ClusterConfig cfg;
  cfg.nodes = 5; // strong-scaling remainder: two share groups
  cfg.total_bytes = 5 * GiB + 512 * MiB;
  cfg.reduced_bytes = 256 * MiB;
  cfg.iterations = 2;
  cfg.metrics = true;
  cluster::ClusterSim sim(cfg);
  sim.run();

  const auto& fed = sim.federation();
  EXPECT_EQ(fed.total_nodes(), 5u);
  EXPECT_GE(fed.size(), 1u);

  json::Value doc;
  std::string err;
  ASSERT_TRUE(json::parse(sim.metrics_json(), doc, &err)) << err;
  EXPECT_EQ(doc.find("total_nodes")->num_or(0), 5);
  const auto* agg = doc.find("aggregate");
  ASSERT_NE(agg, nullptr);
  // The aggregate carries the per-node engine counters.
  bool saw_tasks = false;
  for (const auto& c : agg->find("counters")->arr) {
    if (c.find("name")->str_or("") == "hmr_policy_tasks_run_total") {
      saw_tasks = c.find("value")->num_or(0) > 0;
    }
  }
  EXPECT_TRUE(saw_tasks);

  json::Value attrib;
  ASSERT_TRUE(json::parse(sim.attrib_json(), attrib, &err)) << err;
  EXPECT_EQ(attrib.find("total_nodes")->num_or(0), 5);
  const auto* nodes = attrib.find("nodes");
  ASSERT_NE(nodes, nullptr);
  ASSERT_FALSE(nodes->arr.empty());
  for (const auto& n : nodes->arr) {
    const auto* a = n.find("attrib");
    ASSERT_NE(a, nullptr);
    EXPECT_GT(a->find("tasks")->num_or(0), 0);
    EXPECT_EQ(a->find("audit")->find("sum_violations")->num_or(-1), 0);
  }
}

} // namespace
} // namespace hmr
