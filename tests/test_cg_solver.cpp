// Tests for the conjugate-gradient Poisson solver app.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/cg_solver.hpp"
#include "apps/reference.hpp"
#include "rt/runtime.hpp"

namespace hmr::apps {
namespace {

rt::Runtime::Config cfg(ooc::Strategy s, int pes = 2) {
  rt::Runtime::Config c;
  c.strategy = s;
  c.num_pes = pes;
  c.mem_scale = 1.0 / 4096;
  return c;
}

TEST(Laplacian, MatchesStencilDefinition) {
  // A delta function maps to the 5-point star.
  constexpr int n = 5;
  std::vector<double> v(n * n, 0.0), y;
  v[2 * n + 2] = 1.0;
  CgSolver::apply_laplacian(v, y, n);
  EXPECT_DOUBLE_EQ(y[2 * n + 2], 4.0);
  EXPECT_DOUBLE_EQ(y[1 * n + 2], -1.0);
  EXPECT_DOUBLE_EQ(y[3 * n + 2], -1.0);
  EXPECT_DOUBLE_EQ(y[2 * n + 1], -1.0);
  EXPECT_DOUBLE_EQ(y[2 * n + 3], -1.0);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
}

TEST(Laplacian, SymmetricPositiveDefinitePropertyHolds) {
  // v' A v > 0 for random nonzero v (SPD is what CG requires).
  constexpr int n = 8;
  std::vector<double> v(n * n), y;
  fill_pattern(v.data(), v.size(), 9);
  CgSolver::apply_laplacian(v, y, n);
  double vav = 0;
  for (std::size_t i = 0; i < v.size(); ++i) vav += v[i] * y[i];
  EXPECT_GT(vav, 0.0);
}

TEST(SerialCg, ConvergesAndSolves) {
  constexpr int n = 16;
  std::vector<double> b(n * n), x;
  fill_pattern(b.data(), b.size(), 3);
  const auto r = CgSolver::serial_solve(b, n, 500, 1e-16, x);
  EXPECT_TRUE(r.converged);
  // Check A x ~= b.
  std::vector<double> ax;
  CgSolver::apply_laplacian(x, ax, n);
  for (std::size_t i = 0; i < b.size(); ++i) {
    ASSERT_NEAR(ax[i], b[i], 1e-6);
  }
}

class CgStrategies : public ::testing::TestWithParam<ooc::Strategy> {};

TEST_P(CgStrategies, MatchesSerialSolver) {
  CgParams p;
  p.n = 24;
  p.strips = 4;
  p.max_iterations = 300;
  p.tolerance = 1e-18;
  rt::Runtime rt(cfg(GetParam(), /*pes=*/4));
  CgSolver app(rt, p);
  const auto res = app.solve();
  EXPECT_TRUE(res.converged);

  std::vector<double> x_ref;
  const auto ref = CgSolver::serial_solve(app.rhs(), p.n,
                                          p.max_iterations, p.tolerance,
                                          x_ref);
  EXPECT_TRUE(ref.converged);
  // Reduction order differs from serial: small drift allowed.
  EXPECT_NEAR(res.iterations, ref.iterations, 2);
  const auto x = app.solution();
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_NEAR(x[i], x_ref[i], 1e-7) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, CgStrategies,
    ::testing::Values(ooc::Strategy::Naive, ooc::Strategy::SingleIo,
                      ooc::Strategy::SyncNoIo, ooc::Strategy::MultiIo),
    [](const auto& pi) { return ooc::strategy_name(pi.param); });

TEST(CgSolver, ResidualIsActuallySmall) {
  CgParams p;
  p.n = 16;
  p.strips = 2;
  p.tolerance = 1e-14;
  rt::Runtime rt(cfg(ooc::Strategy::MultiIo));
  CgSolver app(rt, p);
  const auto res = app.solve();
  ASSERT_TRUE(res.converged);
  // Independently verify ||A x - b||.
  std::vector<double> ax;
  CgSolver::apply_laplacian(app.solution(), ax, p.n);
  const auto b = app.rhs();
  double err2 = 0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    err2 += (ax[i] - b[i]) * (ax[i] - b[i]);
  }
  EXPECT_LT(std::sqrt(err2), 1e-5);
}

TEST(CgSolver, SingleStripDegenerateCase) {
  CgParams p;
  p.n = 12;
  p.strips = 1;
  rt::Runtime rt(cfg(ooc::Strategy::MultiIo, 1));
  CgSolver app(rt, p);
  EXPECT_TRUE(app.solve().converged);
}

TEST(CgSolver, StreamsThroughTheFastTier) {
  CgParams p;
  p.n = 32;
  p.strips = 8;
  p.max_iterations = 10;
  p.tolerance = 0.0; // run all 10 iterations
  rt::Runtime rt(cfg(ooc::Strategy::MultiIo, 4));
  CgSolver app(rt, p);
  (void)app.solve();
  const auto st = rt.policy_stats();
  // 4 waves x 8 strips x 10 iterations of annotated tasks.
  EXPECT_EQ(st.tasks_run, 4u * 8 * 10);
  EXPECT_GT(st.fetch_bytes, 0u);
}

} // namespace
} // namespace hmr::apps
