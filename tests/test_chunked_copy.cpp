// ChunkRing + chunked MemoryManager::migrate: integrity over odd
// sizes and chunk-boundary off-by-ones, helper cooperation,
// cancellation mid-stream, and slot recycling.

#include "mem/chunked_copy.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "mem/memory_manager.hpp"

namespace hmr::mem {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(i * 131 + (i >> 8));
  }
  return v;
}

TEST(ChunkRing, CopiesExactlyOddSizesAndBoundaries) {
  ChunkRing ring(/*chunk_bytes=*/1024);
  // Sub-chunk, exact multiples, one-off either side of a boundary,
  // odd primes: every size must round-trip bit-exactly.
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{1023}, std::size_t{1024},
        std::size_t{1025}, std::size_t{4096}, std::size_t{4097},
        std::size_t{10239}, std::size_t{10240}, std::size_t{10241},
        std::size_t{65521}}) {
    const auto src = pattern(n);
    std::vector<std::uint8_t> dst(n, 0);
    const CopyOutcome out = ring.run(dst.data(), src.data(), n);
    EXPECT_FALSE(out.cancelled) << n;
    EXPECT_EQ(out.chunks, (n + 1023) / 1024) << n;
    EXPECT_EQ(std::memcmp(dst.data(), src.data(), n), 0) << n;
  }
}

TEST(ChunkRing, ZeroBytesIsANoop) {
  ChunkRing ring(64);
  const CopyOutcome out = ring.run(nullptr, nullptr, 0);
  EXPECT_EQ(out.chunks, 0u);
  EXPECT_FALSE(out.cancelled);
}

TEST(ChunkRing, HelpersCarryChunksAndDataStaysIntact) {
  ChunkRing ring(/*chunk_bytes=*/4096);
  const std::size_t n = 6 * 1024 * 1024 + 777;
  const auto src = pattern(n);
  std::vector<std::uint8_t> dst(n, 0);

  std::atomic<bool> stop{false};
  std::vector<std::thread> helpers;
  for (int h = 0; h < 3; ++h) {
    helpers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        if (ring.assist() == 0) std::this_thread::yield();
      }
    });
  }
  // Several jobs back to back through the same slots.
  for (int rep = 0; rep < 4; ++rep) {
    std::memset(dst.data(), 0, n);
    const CopyOutcome out = ring.run(dst.data(), src.data(), n);
    EXPECT_FALSE(out.cancelled);
    EXPECT_EQ(out.chunks, (n + 4095) / 4096);
    ASSERT_EQ(std::memcmp(dst.data(), src.data(), n), 0);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : helpers) t.join();
  // Owner + helpers together copied every chunk of every job.
  EXPECT_EQ(ring.chunks_copied(), 4 * ((n + 4095) / 4096));
  EXPECT_EQ(ring.jobs(), 4u);
}

TEST(ChunkRing, ConcurrentOwnersShareTheRing) {
  ChunkRing ring(/*chunk_bytes=*/2048);
  const std::size_t n = 512 * 1024 + 13;
  const auto src = pattern(n);
  constexpr int kOwners = 4;
  std::vector<std::vector<std::uint8_t>> dsts(
      kOwners, std::vector<std::uint8_t>(n, 0));
  std::vector<std::thread> owners;
  for (int o = 0; o < kOwners; ++o) {
    owners.emplace_back([&, o] {
      const CopyOutcome out = ring.run(dsts[o].data(), src.data(), n);
      EXPECT_FALSE(out.cancelled);
    });
  }
  for (auto& t : owners) t.join();
  for (int o = 0; o < kOwners; ++o) {
    ASSERT_EQ(std::memcmp(dsts[o].data(), src.data(), n), 0) << o;
  }
}

TEST(ChunkRing, CancellationStopsMidStreamAndRingStaysUsable) {
  ChunkRing ring(/*chunk_bytes=*/256);
  const std::size_t n = 1024 * 1024;
  const auto src = pattern(n);
  std::vector<std::uint8_t> dst(n, 0);

  // Pre-set flag: no chunk may be claimed at all.
  std::atomic<bool> cancel{true};
  CopyOutcome out = ring.run(dst.data(), src.data(), n, &cancel);
  EXPECT_TRUE(out.cancelled);
  EXPECT_EQ(out.chunks, 0u);

  // Flag tripped by a racing thread: the copy stops early (or, at
  // worst, completes); either way the call returns and the ring is
  // reusable.  Copied chunks form a prefix.
  cancel.store(false);
  std::thread trip([&] { cancel.store(true, std::memory_order_release); });
  out = ring.run(dst.data(), src.data(), n, &cancel);
  trip.join();
  EXPECT_LE(out.chunks, n / 256);
  if (!out.cancelled) {
    EXPECT_EQ(out.chunks, n / 256);
  }

  // The ring must be fully recycled: an uncancelled copy still works.
  std::memset(dst.data(), 0, n);
  std::atomic<bool> no_cancel{false};
  out = ring.run(dst.data(), src.data(), n, &no_cancel);
  EXPECT_FALSE(out.cancelled);
  ASSERT_EQ(std::memcmp(dst.data(), src.data(), n), 0);
}

TEST(ChunkRing, FallbackCounterMatchesFlaggedOutcomes) {
  // More concurrent owners than kSlots: whichever jobs find the ring
  // full must (a) flag ring_fallback on their outcome, (b) advance the
  // cumulative counter by exactly the number of flagged outcomes, and
  // (c) still copy bit-exactly.  Whether any fallback actually occurs
  // is scheduler-dependent (a single-core host may serialize the
  // owners), so only the consistency of the three is asserted.
  ChunkRing ring(/*chunk_bytes=*/1024);
  const std::size_t n = 2 * 1024 * 1024 + 7;
  const auto src = pattern(n);
  constexpr int kOwners = static_cast<int>(ChunkRing::kSlots) + 8;
  std::vector<std::vector<std::uint8_t>> dsts(
      kOwners, std::vector<std::uint8_t>(n, 0));
  std::atomic<int> flagged{0};
  const std::uint64_t before = ring.ring_fallbacks();
  std::vector<std::thread> owners;
  for (int o = 0; o < kOwners; ++o) {
    owners.emplace_back([&, o] {
      const CopyOutcome out = ring.run(dsts[o].data(), src.data(), n);
      EXPECT_FALSE(out.cancelled);
      if (out.ring_fallback) flagged.fetch_add(1);
    });
  }
  for (auto& t : owners) t.join();
  EXPECT_EQ(ring.ring_fallbacks() - before,
            static_cast<std::uint64_t>(flagged.load()));
  for (int o = 0; o < kOwners; ++o) {
    ASSERT_EQ(std::memcmp(dsts[o].data(), src.data(), n), 0) << o;
  }
}

TEST(ChunkRing, SmallAndRingCopiesAreNotFallbacks) {
  ChunkRing ring(/*chunk_bytes=*/1024);
  const auto src = pattern(8192);
  std::vector<std::uint8_t> dst(8192, 0);
  // Sub-chunk bypass: not a fallback.
  CopyOutcome out = ring.run(dst.data(), src.data(), 512);
  EXPECT_FALSE(out.ring_fallback);
  // Uncontended ring copy: not a fallback.
  out = ring.run(dst.data(), src.data(), 8192);
  EXPECT_FALSE(out.ring_fallback);
  EXPECT_EQ(ring.ring_fallbacks(), 0u);
}

TEST(ChunkedMigrate, RoundTripIntegrityThroughMemoryManager) {
  const std::uint64_t n = 4 * 1024 * 1024 + 321; // odd size, > threshold
  MemoryManager mm({{"fast", 8u << 20}, {"slow", 8u << 20}});
  mm.set_chunked_copy(/*threshold=*/1u << 20, /*chunk=*/128u << 10);
  const BlockId b = mm.register_block(n, 1);
  ASSERT_NE(b, kInvalidBlock);

  const auto ref = pattern(n);
  std::memcpy(mm.block_ptr(b), ref.data(), n);

  MigrateResult up = mm.migrate(b, 0);
  ASSERT_TRUE(up.ok);
  EXPECT_TRUE(up.chunked);
  EXPECT_EQ(up.chunks, (n + (128u << 10) - 1) / (128u << 10));
  EXPECT_EQ(std::memcmp(mm.block_ptr(b), ref.data(), n), 0);

  MigrateResult down = mm.migrate(b, 1);
  ASSERT_TRUE(down.ok);
  EXPECT_TRUE(down.chunked);
  EXPECT_EQ(std::memcmp(mm.block_ptr(b), ref.data(), n), 0);
  mm.unregister_block(b);
}

TEST(ChunkedMigrate, SmallCopiesBypassTheRing) {
  MemoryManager mm({{"fast", 4u << 20}, {"slow", 4u << 20}});
  mm.set_chunked_copy(/*threshold=*/1u << 20, /*chunk=*/128u << 10);
  const BlockId b = mm.register_block(64u << 10, 1);
  const MigrateResult r = mm.migrate(b, 0);
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.chunked);
  EXPECT_EQ(mm.chunk_ring().jobs(), 0u);
  mm.unregister_block(b);
}

TEST(ChunkedMigrate, AssistFromAnotherThread) {
  const std::uint64_t n = 16u << 20;
  MemoryManager mm({{"fast", 20u << 20}, {"slow", 20u << 20}});
  mm.set_chunked_copy(/*threshold=*/1u << 20, /*chunk=*/64u << 10);
  const BlockId b = mm.register_block(n, 1);
  const auto ref = pattern(n);
  std::memcpy(mm.block_ptr(b), ref.data(), n);

  std::atomic<bool> stop{false};
  std::thread helper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (mm.assist_copies() == 0) std::this_thread::yield();
    }
  });
  std::uint32_t assisted = 0;
  for (int i = 0; i < 6; ++i) {
    const MigrateResult up = mm.migrate(b, 0);
    ASSERT_TRUE(up.ok && up.chunked);
    assisted += up.assisted_chunks;
    const MigrateResult down = mm.migrate(b, 1);
    ASSERT_TRUE(down.ok && down.chunked);
    assisted += down.assisted_chunks;
  }
  stop.store(true, std::memory_order_release);
  helper.join();
  EXPECT_EQ(std::memcmp(mm.block_ptr(b), ref.data(), n), 0);
  EXPECT_EQ(mm.chunk_ring().chunks_assisted(), assisted);
  // Cooperation is timing-dependent (a single-core host may never
  // schedule the helper mid-copy), so only the counters' consistency
  // is asserted unconditionally.
  mm.unregister_block(b);
}

} // namespace
} // namespace hmr::mem
