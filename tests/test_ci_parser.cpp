// Tests for the .ci annotation parser (the charmxi front half).

#include <gtest/gtest.h>

#include "rt/ci_parser.hpp"

namespace hmr::rt {
namespace {

TEST(CiParser, PaperExampleParses) {
  // The exact excerpt from the paper's §IV-A.
  const auto r = parse_ci(R"(
    module Compute{
      entry [prefetch] void compute_kernel() [readwrite: A, writeonly: B];
    };
  )");
  ASSERT_TRUE(r) << r.error;
  ASSERT_EQ(r.file->modules.size(), 1u);
  const auto& m = r.file->modules[0];
  EXPECT_EQ(m.name, "Compute");
  ASSERT_EQ(m.entries.size(), 1u);
  const auto& e = m.entries[0];
  EXPECT_EQ(e.name, "compute_kernel");
  EXPECT_TRUE(e.prefetch);
  ASSERT_EQ(e.deps.size(), 2u);
  EXPECT_EQ(e.deps[0].mode, ooc::AccessMode::ReadWrite);
  EXPECT_EQ(e.deps[0].name, "A");
  EXPECT_EQ(e.deps[1].mode, ooc::AccessMode::WriteOnly);
  EXPECT_EQ(e.deps[1].name, "B");
}

TEST(CiParser, PlainEntryWithoutAttributes) {
  const auto r = parse_ci("module M { entry void go(); };");
  ASSERT_TRUE(r) << r.error;
  const auto& e = r.file->modules[0].entries[0];
  EXPECT_FALSE(e.prefetch);
  EXPECT_TRUE(e.deps.empty());
}

TEST(CiParser, MultipleModulesAndEntries) {
  const auto r = parse_ci(R"(
    module Stencil {
      entry [prefetch] void exchange() [readonly: cur, writeonly: ghost];
      entry [prefetch] void update() [readonly: cur, writeonly: next];
      entry void converge_check();
    };
    module MatMul {
      entry [prefetch] void gemm()
          [readonly: a, readonly: b, readwrite: c];
    }
  )");
  ASSERT_TRUE(r) << r.error;
  ASSERT_EQ(r.file->modules.size(), 2u);
  EXPECT_EQ(r.file->modules[0].entries.size(), 3u);
  EXPECT_EQ(r.file->modules[1].entries.size(), 1u);
  const auto* gemm = r.file->find("MatMul", "gemm");
  ASSERT_NE(gemm, nullptr);
  EXPECT_EQ(gemm->deps.size(), 3u);
  EXPECT_EQ(r.file->find("MatMul", "nope"), nullptr);
  EXPECT_EQ(r.file->find("Nope", "gemm"), nullptr);
}

TEST(CiParser, CommentsAreSkipped) {
  const auto r = parse_ci(R"(
    // leading comment
    module M { /* inline */ entry void f(); // trailing
    };
  )");
  ASSERT_TRUE(r) << r.error;
  EXPECT_EQ(r.file->modules[0].entries[0].name, "f");
}

TEST(CiParser, ExtraAttributesPreserved) {
  const auto r = parse_ci(
      "module M { entry [prefetch, threaded] void f() [readonly: x]; };");
  ASSERT_TRUE(r) << r.error;
  const auto& e = r.file->modules[0].entries[0];
  EXPECT_TRUE(e.prefetch);
  ASSERT_EQ(e.attrs.size(), 2u);
  EXPECT_EQ(e.attrs[1], "threaded");
}

TEST(CiParser, PrefetchWithoutDepsRejected) {
  const auto r = parse_ci("module M { entry [prefetch] void f(); };");
  EXPECT_FALSE(r);
  EXPECT_NE(r.error.find("no dependences"), std::string::npos);
}

TEST(CiParser, UnknownModeRejected) {
  const auto r =
      parse_ci("module M { entry [prefetch] void f() [readmostly: x]; };");
  EXPECT_FALSE(r);
  EXPECT_NE(r.error.find("unknown access mode"), std::string::npos);
}

TEST(CiParser, SyntaxErrorsCarryPosition) {
  const auto r = parse_ci("module M {\n  entry void f()\n};");
  EXPECT_FALSE(r);
  EXPECT_GE(r.line, 2);
}

TEST(CiParser, EmptyInputRejected) {
  const auto r = parse_ci("   \n  // nothing\n");
  EXPECT_FALSE(r);
}

TEST(CiParser, MissingSemicolonRejected) {
  const auto r = parse_ci("module M { entry void f() }");
  EXPECT_FALSE(r);
}

TEST(CiParser, KeywordPrefixIsNotKeyword) {
  // 'moduleX' must not parse as 'module' + 'X'.
  const auto r = parse_ci("moduleX M { };");
  EXPECT_FALSE(r);
}

TEST(CiGenerate, StubsContainPrePostHooks) {
  const auto r = parse_ci(R"(
    module Compute {
      entry [prefetch] void compute_kernel() [readwrite: A, writeonly: B];
      entry void plain();
    };
  )");
  ASSERT_TRUE(r) << r.error;
  const std::string code = generate_stubs(r.file->modules[0]);
  EXPECT_NE(code.find("_compute_kernel_preprocess"), std::string::npos);
  EXPECT_NE(code.find("_compute_kernel_postprocess"), std::string::npos);
  EXPECT_NE(code.find("add_dependence(A, AccessMode::ReadWrite)"),
            std::string::npos);
  EXPECT_NE(code.find("add_dependence(B, AccessMode::WriteOnly)"),
            std::string::npos);
  // Non-prefetch entries get no hooks.
  EXPECT_EQ(code.find("_plain_"), std::string::npos);
}

} // namespace
} // namespace hmr::rt
