// Golden-file tests for the CLI tools (tools/hmr_trace,
// tools/hmr_bench_diff), driven through popen the way a user or a CI
// step would run them.  The binaries' paths and the golden directory
// arrive as compile definitions from tests/CMakeLists.txt.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult run(const std::string& cmd) {
  RunResult r;
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (!pipe) return r;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, pipe)) > 0) {
    r.output.append(buf, n);
  }
  const int status = ::pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string golden(const std::string& file) {
  std::ifstream f(std::string(HMR_GOLDEN_DIR) + "/" + file);
  EXPECT_TRUE(f.good()) << "missing golden file " << file;
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// Tools are run from inside the golden directory so the input path the
// tool echoes back is the stable relative name, not a build path.
std::string in_golden_dir(const std::string& tool_and_args) {
  return "cd '" HMR_GOLDEN_DIR "' && " + tool_and_args;
}

// ---- hmr_trace ----

TEST(HmrTrace, SummaryMatchesGolden) {
  const RunResult r = run(
      in_golden_dir(std::string("'") + HMR_TRACE_TOOL +
                    "' --in trace_small.csv 2>/dev/null"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, golden("trace_small.out"));
}

TEST(HmrTrace, TimelineMatchesGolden) {
  const RunResult r = run(
      in_golden_dir(std::string("'") + HMR_TRACE_TOOL +
                    "' --in trace_small.csv --timeline --width 60 "
                    "2>/dev/null"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, golden("trace_small_timeline.out"));
}

TEST(HmrTrace, CleanTraceEmitsNoWarning) {
  const RunResult r = run(
      in_golden_dir(std::string("'") + HMR_TRACE_TOOL +
                    "' --in trace_small.csv 2>&1 1>/dev/null"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, ""); // stderr must stay silent on a clean trace
}

TEST(HmrTrace, DroppedTrailerCountsAndWarns) {
  const RunResult out = run(
      in_golden_dir(std::string("'") + HMR_TRACE_TOOL +
                    "' --in trace_drops.csv 2>/dev/null"));
  EXPECT_EQ(out.exit_code, 0);
  EXPECT_NE(out.output.find("ring drops: 7"), std::string::npos);
  const RunResult err = run(
      in_golden_dir(std::string("'") + HMR_TRACE_TOOL +
                    "' --in trace_drops.csv 2>&1 1>/dev/null"));
  EXPECT_NE(err.output.find("WARNING: 7 events were dropped"),
            std::string::npos);
}

TEST(HmrTrace, RejectsBadHeader) {
  const RunResult r = run(
      in_golden_dir(std::string("'") + HMR_TRACE_TOOL +
                    "' --in bench_old.json 2>&1"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("unrecognized header"), std::string::npos);
}

TEST(HmrTrace, JsonSummaryIsMachineReadable) {
  const RunResult r = run(
      in_golden_dir(std::string("'") + HMR_TRACE_TOOL +
                    "' --in trace_small.csv --json 2>/dev/null"));
  EXPECT_EQ(r.exit_code, 0);
  // Spot-check the document rather than pinning every float digit.
  EXPECT_NE(r.output.find("\"intervals\":7"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"categories\":{"), std::string::npos);
  EXPECT_NE(r.output.find("\"compute\":{"), std::string::npos);
  EXPECT_NE(r.output.find("\"migrations\":["), std::string::npos);
  EXPECT_NE(r.output.find("\"dropped\":0"), std::string::npos);
  // And it must parse: feed it through python3 if available.
  const RunResult py = run(
      in_golden_dir(std::string("'") + HMR_TRACE_TOOL +
                    "' --in trace_small.csv --json 2>/dev/null | "
                    "python3 -c 'import json,sys; json.load(sys.stdin)' "
                    "2>&1 || true"));
  EXPECT_EQ(py.output, "") << py.output;
}

TEST(HmrTrace, DecisionViewMatchesGolden) {
  const RunResult r = run(
      in_golden_dir(std::string("'") + HMR_TRACE_TOOL +
                    "' --decisions decisions_small.csv 2>/dev/null"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, golden("decisions_small.out"));
}

TEST(HmrTrace, DecisionViewRejectsWrongHeader) {
  const RunResult r = run(
      in_golden_dir(std::string("'") + HMR_TRACE_TOOL +
                    "' --decisions trace_small.csv 2>&1"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("unrecognized decisions header"),
            std::string::npos)
      << r.output;
}

// ---- hmr_top ----

TEST(HmrTop, OfflineFrameMatchesGolden) {
  const RunResult r = run(
      in_golden_dir(std::string("'") + HMR_TOP_TOOL +
                    "' --once --from hmr_top_status.json "
                    "--history-file hmr_top_history.json 2>/dev/null"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, golden("hmr_top.out"));
}

TEST(HmrTop, MissingHistoryDropsOnlySparklines) {
  const RunResult r = run(
      in_golden_dir(std::string("'") + HMR_TOP_TOOL +
                    "' --once --from hmr_top_status.json 2>/dev/null"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("Tiers:"), std::string::npos);
  EXPECT_EQ(r.output.find("|"), std::string::npos); // no sparkline pipes
  EXPECT_NE(r.output.find("watchdog trip(s)"), std::string::npos);
}

TEST(HmrTop, RequiresPortOrFile) {
  const RunResult r = run(std::string("'") + HMR_TOP_TOOL + "' 2>&1");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("--port or --from"), std::string::npos);
}

// ---- hmr_explain ----

TEST(HmrExplain, ComputeBoundSummaryMatchesGolden) {
  const RunResult r = run(
      in_golden_dir(std::string("'") + HMR_EXPLAIN_TOOL +
                    "' --in trace_small.csv 2>/dev/null"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, golden("explain_small.out"));
}

TEST(HmrExplain, BandwidthBoundWithModelAndWhatIfMatchesGolden) {
  const RunResult r = run(
      in_golden_dir(std::string("'") + HMR_EXPLAIN_TOOL +
                    "' --in explain_bw.csv --model knl --whatif "
                    "2>/dev/null"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, golden("explain_bw.out"));
}

TEST(HmrExplain, JsonOutputCarriesVerdictAndPairs) {
  const RunResult r = run(
      in_golden_dir(std::string("'") + HMR_EXPLAIN_TOOL +
                    "' --in explain_bw.csv --json 2>/dev/null"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("\"verdict\":\"bandwidth-bound\""),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"pairs\":["), std::string::npos);
  EXPECT_NE(r.output.find("\"makespan_s\":10.5"), std::string::npos);
}

TEST(HmrExplain, RequiresExactlyOneInput) {
  const RunResult r =
      run(std::string("'") + HMR_EXPLAIN_TOOL + "' 2>&1");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("exactly one of --in / --perfetto"),
            std::string::npos);
}

TEST(HmrExplain, RejectsMalformedCsvRow) {
  const std::string path = "/tmp/hmr_explain_bad.csv";
  {
    std::ofstream f(path);
    f << "lane,category,start,end,task,src_tier,dst_tier,bytes\n";
    f << "0,compute,zero,1,1,0,0,0\n";
  }
  const RunResult r = run(std::string("'") + HMR_EXPLAIN_TOOL +
                          "' --in " + path + " 2>&1");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("bad row at line 2"), std::string::npos)
      << r.output;
  std::remove(path.c_str());
}

// ---- hmr_bench_diff ----

std::string diff_cmd(const std::string& oldf, const std::string& newf,
                     const std::string& extra = "") {
  return in_golden_dir(std::string("'") + HMR_BENCH_DIFF_TOOL +
                       "' --old " + oldf + " --new " + newf + " " +
                       extra + " 2>&1");
}

TEST(HmrBenchDiff, WithinToleranceExitsZero) {
  const RunResult r = run(diff_cmd("bench_old.json", "bench_new_ok.json"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("ok: "), std::string::npos);
  EXPECT_EQ(r.output.find("REGRESSION"), std::string::npos);
}

TEST(HmrBenchDiff, SelfDiffIsExact) {
  const RunResult r = run(
      diff_cmd("bench_old.json", "bench_old.json", "--tolerance 0"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(HmrBenchDiff, RegressionsExitTwo) {
  const RunResult r =
      run(diff_cmd("bench_old.json", "bench_new_regress.json"));
  EXPECT_EQ(r.exit_code, 2) << r.output;
  // Slower wall clock, lower throughput, lower speedup, and a
  // disappeared metric must each be flagged.
  EXPECT_NE(r.output.find("configs.sharded.wall_s"), std::string::npos);
  EXPECT_NE(r.output.find("metric disappeared"), std::string::npos);
  EXPECT_NE(r.output.find("4 regression(s)"), std::string::npos);
}

TEST(HmrBenchDiff, OnlyRestrictsTheGate) {
  // The regressing file passes when gated on its stable counters only.
  const RunResult ok = run(diff_cmd("bench_old.json",
                                    "bench_new_regress.json",
                                    "--only bytes --tolerance 0"));
  EXPECT_EQ(ok.exit_code, 0) << ok.output;
  // A suffix must match at a path-component boundary: "asks" is not
  // a component of configs.global.tasks.
  const RunResult none = run(
      diff_cmd("bench_old.json", "bench_new_ok.json", "--only asks"));
  EXPECT_EQ(none.exit_code, 1);
  EXPECT_NE(none.output.find("matched no metric"), std::string::npos);
}

TEST(HmrBenchDiff, DecodesUnicodeEscapes) {
  // bench_unicode.json carries \uXXXX escapes (BMP code points and a
  // surrogate pair) in object keys and element-key "name" members; the
  // parser must decode them to UTF-8 instead of rejecting the file.
  const RunResult r = run(
      diff_cmd("bench_unicode.json", "bench_unicode.json", "--tolerance 0"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output.find("unsupported escape"), std::string::npos);
  // é -> C3 A9: the decoded name keys the flattened path.
  EXPECT_NE(r.output.find("configs.caf\xC3\xA9.wall_s"), std::string::npos)
      << r.output;
  // € (3-byte) inside a key.
  EXPECT_NE(r.output.find("euro\xE2\x82\xAC"), std::string::npos) << r.output;
}

TEST(HmrBenchDiff, RejectsUnpairedSurrogate) {
  const std::string path = "/tmp/hmr_bad_surrogate.json";
  {
    std::ofstream f(path);
    f << "{\"na\\ud83dme\": 1}\n";
  }
  const RunResult r = run(diff_cmd(path, path));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("unpaired surrogate"), std::string::npos)
      << r.output;
  std::remove(path.c_str());
}

TEST(HmrBenchDiff, MissingFileExitsOne) {
  const RunResult r = run(diff_cmd("bench_old.json", "no_such.json"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("cannot open"), std::string::npos);
}

} // namespace
