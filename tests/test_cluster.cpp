// Tests for the disaggregated-cluster subsystem: the NetworkModel's
// message-rate limit, the PlacementCoordinator's ledgers, the
// remote-backed tier in the policy engine, and the multi-node
// ClusterSim (scaling shapes, comm-fraction identities, ledger/engine
// byte conservation, single-node equivalence).

#include <gtest/gtest.h>

#include <string>

#include "adapt/block_profiler.hpp"
#include "adapt/placement_advisor.hpp"
#include "cluster/cluster_sim.hpp"
#include "hw/machine_model.hpp"
#include "ooc/policy_engine.hpp"
#include "sim/cluster.hpp"
#include "sim/sim_executor.hpp"
#include "sim/stencil_workload.hpp"
#include "util/units.hpp"

namespace hmr {
namespace {

// ---------- network model: message-rate limiting ----------

TEST(NetworkModel, SmallMessageRegimeIsMessageRateBound) {
  sim::NetworkModel net;
  net.link_bw = 12.5e9;
  net.injection_bw = 10.0e9;
  net.msg_rate = 1e6; // 1 M msgs/s
  net.max_msg_bytes = 4 << 10;

  // 400 KiB fragments into 100 messages: 100 us at the NIC message
  // rate vs 41 us of serialization — the message rate wins.
  const std::uint64_t bytes = 400ull << 10;
  EXPECT_EQ(net.messages(bytes), 100u);
  EXPECT_DOUBLE_EQ(net.serialize_seconds(bytes), 100.0 / net.msg_rate);
  EXPECT_LT(net.effective_bw(bytes), net.injection_bw);

  // This NIC sustains at most max_msg_bytes * msg_rate = 4 GB/s, so
  // even bulk transfers stay message-rate-bound.
  const std::uint64_t big = 4ull << 30;
  EXPECT_NEAR(net.effective_bw(big),
              static_cast<double>(net.max_msg_bytes) * net.msg_rate, 1.0);

  // The default NIC (64 KiB segments at 25 M msgs/s) amortizes the
  // per-message cost: bulk transfers are bandwidth-bound.
  sim::NetworkModel fat;
  EXPECT_DOUBLE_EQ(fat.serialize_seconds(big),
                   static_cast<double>(big) / fat.injection_bw);
  EXPECT_NEAR(fat.effective_bw(big), fat.injection_bw, 1.0);

  // Even one byte is one message.
  EXPECT_EQ(net.messages(1), 1u);
  EXPECT_GE(net.transfer_seconds(1), net.latency);
}

TEST(NetworkModel, TierParamsMirrorTheNetworkPath) {
  sim::NetworkModel net;
  net.msg_rate = 2e6;
  net.max_msg_bytes = 8 << 10;
  const ooc::RemoteTierParams p = net.tier_params();
  EXPECT_DOUBLE_EQ(p.latency, net.latency);
  EXPECT_DOUBLE_EQ(p.bandwidth, net.injection_bw); // min(link, injection)
  EXPECT_DOUBLE_EQ(p.msg_rate, net.msg_rate);
  EXPECT_EQ(p.max_msg_bytes, net.max_msg_bytes);
  const std::uint64_t b = 100ull << 10;
  EXPECT_EQ(net.messages(b), p.messages(b));
  EXPECT_DOUBLE_EQ(net.serialize_seconds(b), p.serialize_seconds(b));
}

// ---------- remote-backed tiers in the engine ----------

TEST(RemoteTier, ModelFlagSortsRemoteBelowLocalAndStampsBackend) {
  auto m = hw::knl_flat_all_to_all();
  sim::NetworkModel net;
  const auto id = sim::add_remote_tier(m, net);
  const auto tiers = sim::tiers_with_remote(m, net);
  ASSERT_EQ(tiers.size(), 3u);
  EXPECT_EQ(tiers[0].backend, ooc::TierBackendKind::LocalArena);
  EXPECT_EQ(tiers[1].backend, ooc::TierBackendKind::LocalArena);
  EXPECT_EQ(tiers[2].backend, ooc::TierBackendKind::Remote);
  EXPECT_EQ(tiers[2].id, id);
  EXPECT_EQ(tiers[2].capacity, 0u); // bottom level is unbounded
  EXPECT_DOUBLE_EQ(tiers[2].remote.msg_rate, net.msg_rate);
  EXPECT_STREQ(ooc::tier_backend_name(tiers[2].backend), "remote");
}

TEST(RemoteTier, HomeLevelPlacementAndRemoteTrafficCounters) {
  auto m = hw::knl_flat_all_to_all();
  sim::NetworkModel net;
  sim::add_remote_tier(m, net);

  ooc::PolicyEngine::Config cfg;
  cfg.strategy = ooc::Strategy::MultiIo;
  cfg.num_pes = 1;
  cfg.fast_capacity = 64 * MiB;
  cfg.tiers = sim::tiers_with_remote(m, net);
  cfg.tiers[1].capacity = 64 * MiB;
  ooc::PolicyEngine eng(cfg);

  // Block 1 homes on the middle (local) level, block 2 defaults to
  // the remote bottom.
  eng.add_block(1, 16 * MiB, /*home_level=*/1);
  eng.add_block(2, 16 * MiB, /*home_level=*/-1);
  EXPECT_EQ(eng.block_level(1), 1);
  EXPECT_EQ(eng.block_level(2), 2);
  EXPECT_EQ(eng.tier_used(1), 16 * MiB);
  EXPECT_EQ(eng.tier_used(2), 16 * MiB);

  // Fetching the locally-homed block is not network traffic; fetching
  // the remote-homed one is.
  ooc::TaskDesc t1;
  t1.id = 1;
  t1.pe = 0;
  t1.deps = {{1, ooc::AccessMode::ReadOnly}};
  auto cmds = eng.on_task_arrived(t1);
  for (const auto& c : cmds) {
    if (c.kind == ooc::Command::Kind::Fetch) eng.on_fetch_complete(c.block);
  }
  EXPECT_EQ(eng.stats().remote_fetches, 0u);

  ooc::TaskDesc t2;
  t2.id = 2;
  t2.pe = 0;
  t2.deps = {{2, ooc::AccessMode::ReadOnly}};
  cmds = eng.on_task_arrived(t2);
  bool fetched = false;
  for (const auto& c : cmds) {
    if (c.kind == ooc::Command::Kind::Fetch) {
      fetched = true;
      eng.on_fetch_complete(c.block);
    }
  }
  EXPECT_TRUE(fetched);
  EXPECT_EQ(eng.stats().remote_fetches, 1u);
  EXPECT_EQ(eng.stats().remote_fetch_bytes, 16 * MiB);
}

TEST(RemoteTier, AdvisorRemoteCostingRaisesBreakEven) {
  const auto m = hw::knl_flat_all_to_all();
  auto base = adapt::AdvisorConfig::from_model(m);
  auto remote = base;
  // A 10 GB/s network with 2 us latency is far costlier than the
  // local migration channel.
  remote.apply_remote(1.0 / 10.0e9, 2e-6);
  EXPECT_GE(remote.fetch_seconds_per_byte_loaded, 1.0 / 10.0e9);
  EXPECT_GT(remote.migration_fixed_seconds, base.migration_fixed_seconds);

  adapt::BlockProfiler prof{adapt::ProfilerConfig{}};
  adapt::PlacementAdvisor local_adv(prof, base);
  adapt::PlacementAdvisor remote_adv(prof, remote);
  const std::uint64_t bytes = 64 * MiB;
  EXPECT_GT(remote_adv.break_even_accesses(bytes),
            local_adv.break_even_accesses(bytes));
}

// ---------- placement coordinator ledgers ----------

TEST(Coordinator, PlacesByAffinityAndBudget) {
  cluster::PlacementCoordinator::Config cfg;
  cfg.nodes = 2;
  cfg.node_capacity = 100;
  cfg.allow_remote = true;
  cluster::PlacementCoordinator c(cfg);

  auto p = c.place(1, 60, /*preferred=*/0);
  EXPECT_EQ(p.node, 0);
  EXPECT_FALSE(p.remote);
  p = c.place(2, 60, 0); // over budget -> spills to the pool
  EXPECT_EQ(p.node, 0);
  EXPECT_TRUE(p.remote);
  p = c.place(3, 60, cluster::kAnyNode); // least-loaded -> node 1
  EXPECT_EQ(p.node, 1);
  EXPECT_FALSE(p.remote);

  EXPECT_EQ(c.node(0).placed_local, 60u);
  EXPECT_EQ(c.node(0).placed_remote, 60u);
  EXPECT_EQ(c.node(1).placed_local, 60u);
  EXPECT_EQ(c.total_bytes(), 180u);
  EXPECT_TRUE(c.knows(2));
  EXPECT_TRUE(c.placement_of(2).remote);
  EXPECT_TRUE(c.audit().empty());
}

TEST(Coordinator, LedgerConservationAndReconcile) {
  cluster::PlacementCoordinator::Config cfg;
  cfg.nodes = 1;
  cfg.node_capacity = 100;
  cfg.allow_remote = true;
  cluster::PlacementCoordinator c(cfg);
  c.place(1, 80, 0);  // local
  c.place(2, 50, 0);  // remote (over budget)

  // The node promotes 30 pool bytes and spills 40 local bytes.
  c.record_promotions(0, 1, 30);
  c.record_spills(0, 2, 40);
  EXPECT_EQ(c.node(0).local_now(), 80 + 30 - 40);
  EXPECT_EQ(c.node(0).remote_now(), 50 - 30 + 40);
  EXPECT_EQ(c.pool_bytes(), 60);
  EXPECT_TRUE(c.audit().empty());

  // Reconcile against engine ground truth: matching values pass,
  // anything else is reported.
  EXPECT_TRUE(c.reconcile(0, 70, 60).empty());
  const auto bad = c.reconcile(0, 71, 60);
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_NE(bad[0].find("local residency"), std::string::npos);

  // Over-promotion drives the pool negative: the audit catches it.
  c.record_promotions(0, 1, 1000);
  EXPECT_FALSE(c.audit().empty());
}

TEST(Coordinator, JsonSnapshotCarriesLedgers) {
  cluster::PlacementCoordinator::Config cfg;
  cfg.nodes = 2;
  cluster::PlacementCoordinator c(cfg);
  c.place(7, 42, 1);
  const std::string j = c.to_json();
  EXPECT_NE(j.find("\"nodes\":2"), std::string::npos);
  EXPECT_NE(j.find("\"placed_local\":42"), std::string::npos);
  EXPECT_NE(j.find("\"node_ledgers\":["), std::string::npos);
}

// ---------- the multi-node cluster DES ----------

cluster::ClusterConfig small_cluster(int nodes) {
  cluster::ClusterConfig c;
  c.nodes = nodes;
  c.bytes_per_node = 1 * GiB;
  c.reduced_bytes = 256 * MiB;
  c.iterations = 3;
  return c;
}

TEST(ClusterSim, CommFractionIdentities) {
  cluster::ClusterSim sim(small_cluster(4));
  const auto r = sim.run();
  EXPECT_EQ(r.nodes, 4);
  // iteration = local + halo; comm fraction is the halo share.
  EXPECT_DOUBLE_EQ(r.iteration_s, r.node_iteration_s + r.halo_s);
  EXPECT_DOUBLE_EQ(r.comm_fraction, r.halo_s / r.iteration_s);
  EXPECT_GT(r.comm_fraction, 0.0);
  // Homogeneous ring: the DES end time is the per-iteration critical
  // path summed over iterations.
  EXPECT_NEAR(r.total_s, r.iteration_s * 3, 1e-9 * r.total_s);
  EXPECT_TRUE(r.audit.empty());
}

TEST(ClusterSim, WeakScalingIsFlatAndStrongScalingMonotone) {
  // Weak: per-node share constant -> per-iteration time flat, halo
  // messages grow linearly with the node count.
  const auto w2 = cluster::ClusterSim(small_cluster(2)).run();
  const auto w8 = cluster::ClusterSim(small_cluster(8)).run();
  EXPECT_DOUBLE_EQ(w2.iteration_s, w8.iteration_s);
  EXPECT_EQ(w8.halo_messages, 4 * w2.halo_messages);
  EXPECT_EQ(w2.halo_bytes_per_node, w8.halo_bytes_per_node);

  // Strong: fixed global set -> more nodes, never slower.
  double prev = 0;
  for (const int n : {1, 2, 4}) {
    auto cfg = small_cluster(n);
    cfg.bytes_per_node = 0;
    cfg.total_bytes = 2 * GiB;
    const auto r = cluster::ClusterSim(cfg).run();
    EXPECT_TRUE(r.audit.empty());
    if (n > 1) {
      EXPECT_LT(r.total_s, prev);
    }
    prev = r.total_s;
  }
}

TEST(ClusterSim, SingleNodeNoRemoteEqualsStandaloneEngine) {
  auto cfg = small_cluster(1);
  cluster::ClusterSim sim(cfg);
  const auto r = sim.run();

  const auto wp = sim::StencilWorkload::params_for_reduced(
      cfg.bytes_per_node, cfg.reduced_bytes, cfg.node.num_pes,
      cfg.iterations);
  const sim::StencilWorkload w(wp);
  sim::SimConfig scfg;
  scfg.model = cfg.node;
  scfg.strategy = cfg.strategy;
  sim::SimExecutor ex(scfg);
  const auto direct = ex.run(w);

  // Byte-identical: same virtual seconds, same engine counters.
  EXPECT_EQ(r.total_s, direct.total_time);
  ASSERT_EQ(r.node_stats.size(), 1u);
  EXPECT_EQ(r.node_stats[0].policy.fetches, direct.policy.fetches);
  EXPECT_EQ(r.node_stats[0].policy.fetch_bytes, direct.policy.fetch_bytes);
  EXPECT_EQ(r.node_stats[0].policy.evicts, direct.policy.evicts);
  EXPECT_EQ(r.node_stats[0].policy.tasks_run, direct.policy.tasks_run);
  EXPECT_EQ(r.halo_messages, 0u);
  EXPECT_EQ(r.remote_messages, 0u);
  EXPECT_TRUE(r.audit.empty());
}

TEST(ClusterSim, RemoteTierConservesBytesAgainstLedgers) {
  auto cfg = small_cluster(2);
  cfg.remote_tier = true;
  cfg.node_local_capacity = 256 * MiB; // 1 GiB share: 3/4 homes remote
  cluster::ClusterSim sim(cfg);
  const auto r = sim.run();

  EXPECT_TRUE(r.audit.empty()) << r.audit.front();
  EXPECT_GT(r.placements_remote, 0u);
  EXPECT_GT(r.placements_local, 0u);
  EXPECT_GT(r.remote_fetch_bytes, 0u);
  EXPECT_GT(r.remote_messages, 0u);
  ASSERT_EQ(r.ledgers.size(), 2u);
  // The engine's network counters are exactly the coordinator's flows.
  std::uint64_t promoted = 0, spilled = 0;
  for (const auto& l : r.ledgers) {
    promoted += l.promoted_bytes;
    spilled += l.spilled_bytes;
  }
  EXPECT_EQ(promoted, r.remote_fetch_bytes);
  EXPECT_EQ(spilled, r.remote_evict_bytes);
}

TEST(ClusterSim, AllRemoteAblationIsSlowerThanCascade) {
  auto cascade_cfg = small_cluster(2);
  cascade_cfg.remote_tier = true;
  cascade_cfg.node_local_capacity = 256 * MiB;
  const auto cascade = cluster::ClusterSim(cascade_cfg).run();

  auto naive_cfg = small_cluster(2);
  naive_cfg.all_remote = true;
  const auto naive = cluster::ClusterSim(naive_cfg).run();

  EXPECT_TRUE(naive.audit.empty());
  EXPECT_EQ(naive.placements_local, 0u);
  // DdrOnly on the remote-augmented model: nothing ever migrates, all
  // compute streams over the wire.
  EXPECT_EQ(naive.remote_fetch_bytes, 0u);
  EXPECT_GT(naive.total_s, cascade.total_s);
}

TEST(ClusterSim, TracerRecordsPerNodeLanes) {
  auto cfg = small_cluster(2);
  cfg.trace = true;
  cluster::ClusterSim sim(cfg);
  const auto r = sim.run();
  const auto s = sim.tracer().summarize();
  EXPECT_EQ(s.lanes, 2);
  EXPECT_GT(s.count_of(trace::Category::Compute), 0u);
  EXPECT_GT(s.count_of(trace::Category::Prefetch), 0u);
  // Each node's halo bytes ride on its lane's Prefetch intervals.
  EXPECT_EQ(s.migration_between(0, 0).bytes,
            2 * 3 * r.halo_bytes_per_node);

  const std::string j = sim.to_json();
  EXPECT_NE(j.find("\"coordinator\""), std::string::npos);
  EXPECT_NE(j.find("\"halo_messages\""), std::string::npos);
}

} // namespace
} // namespace hmr
