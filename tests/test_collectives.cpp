// Tests for node-level collectives (NodeGroup, Reduction).

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "rt/collectives.hpp"

namespace hmr::rt {
namespace {

TEST(NodeGroup, SharedInstanceMutation) {
  NodeGroup<std::vector<int>> ng;
  std::vector<std::thread> ts;
  for (int i = 0; i < 4; ++i) {
    ts.emplace_back([&ng, i] {
      for (int k = 0; k < 100; ++k) {
        ng.with([&](std::vector<int>& v) {
          v.push_back(i);
          return 0;
        });
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(ng.unsafe_get().size(), 400u);
}

TEST(Reduction, SumAcrossThreads) {
  Reduction<double> red(64, 0.0, [](const double& a, const double& b) {
    return a + b;
  });
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&red] {
      for (int i = 0; i < 16; ++i) red.contribute(1.5);
    });
  }
  const double sum = red.wait();
  for (auto& t : ts) t.join();
  EXPECT_DOUBLE_EQ(sum, 96.0);
}

TEST(Reduction, MaxCombine) {
  Reduction<int> red(3, 0, [](const int& a, const int& b) {
    return a > b ? a : b;
  });
  red.contribute(5);
  red.contribute(11);
  red.contribute(7);
  EXPECT_EQ(red.wait(), 11);
}

TEST(Reduction, ReusableAcrossRounds) {
  Reduction<int> red(2, 0, [](const int& a, const int& b) { return a + b; });
  red.contribute(1);
  red.contribute(2);
  EXPECT_EQ(red.wait(), 3);
  red.contribute(10);
  red.contribute(20);
  EXPECT_EQ(red.wait(), 30);
}

TEST(Reduction, TooManyContributionsDie) {
  Reduction<int> red(1, 0, [](const int& a, const int& b) { return a + b; });
  red.contribute(1);
  EXPECT_EQ(red.wait(), 1);
  red.contribute(2); // new round: fine
  EXPECT_DEATH(
      {
        red.contribute(3);
        red.contribute(4);
      },
      "too many");
}

TEST(Reduction, PendingCount) {
  Reduction<int> red(3, 0, [](const int& a, const int& b) { return a + b; });
  EXPECT_EQ(red.pending(), 3u);
  red.contribute(1);
  EXPECT_EQ(red.pending(), 2u);
}

} // namespace
} // namespace hmr::rt
