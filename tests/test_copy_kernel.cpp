// Tests for the data-movement kernel layer (mem/copy_kernel.*): every
// implementation the host supports must be byte-for-byte equivalent to
// std::memcpy over sizes from 1 byte to 8 MiB at every source and
// destination misalignment 0..63, with streaming stores both off and
// forced on.  The overlap contract (migrations copy between distinct
// arenas, never aliasing ranges) is a death test.

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "mem/copy_kernel.hpp"

namespace {

using hmr::mem::CopyImpl;
using hmr::mem::Stream;

constexpr CopyImpl kAll[] = {CopyImpl::Scalar, CopyImpl::SSE2,
                             CopyImpl::AVX2, CopyImpl::AVX512};

std::vector<CopyImpl> supported_impls() {
  std::vector<CopyImpl> out;
  for (const CopyImpl impl : kAll) {
    if (hmr::mem::copy_impl_supported(impl)) out.push_back(impl);
  }
  return out;
}

/// One buffer pair with guard zones: dst is pre-poisoned so both an
/// under-copy and an out-of-range write show up in the full-buffer
/// memcmp against the memcpy reference.
void expect_equivalent(CopyImpl impl, std::size_t n, std::size_t soff,
                       std::size_t doff, Stream stream,
                       const std::vector<unsigned char>& src) {
  ASSERT_LE(soff + n, src.size());
  std::vector<unsigned char> dst(n + 128, 0xEE), ref(n + 128, 0xEE);
  hmr::mem::copy_with(impl, dst.data() + doff, src.data() + soff, n,
                      stream);
  std::memcpy(ref.data() + doff, src.data() + soff, n);
  ASSERT_EQ(0, std::memcmp(dst.data(), ref.data(), dst.size()))
      << "impl=" << hmr::mem::copy_impl_name(impl) << " n=" << n
      << " soff=" << soff << " doff=" << doff
      << " stream=" << static_cast<int>(stream);
}

TEST(CopyKernel, ScalarAlwaysSupported) {
  EXPECT_TRUE(hmr::mem::copy_impl_supported(CopyImpl::Scalar));
  // Whatever the dispatcher picked must itself be supported.
  EXPECT_TRUE(hmr::mem::copy_impl_supported(hmr::mem::copy_impl()));
}

TEST(CopyKernel, EveryImplMatchesMemcpyAtEveryMisalignment) {
  // Sizes chosen to hit every kernel phase: pure-head, head+tail,
  // single vector, unrolled body, body+tail straddles.
  const std::size_t sizes[] = {1,   2,    3,    15,  16,  17,   31,  32,
                               33,  63,   64,   65,  127, 128,  129, 255,
                               256, 1023, 4096, 4097, 65536, 65599};
  std::vector<unsigned char> src((65599 + 64) + 64);
  std::mt19937 rng(42);
  for (auto& b : src) b = static_cast<unsigned char>(rng());
  for (const CopyImpl impl : supported_impls()) {
    for (const std::size_t n : sizes) {
      for (std::size_t off = 0; off < 64; ++off) {
        // Sweep source and destination misalignment independently (one
        // varying, the other fixed off-zero) — a full 64x64 cross per
        // size is slow and adds nothing: the kernels only align dst.
        expect_equivalent(impl, n, off, 11, Stream::Always, src);
        expect_equivalent(impl, n, 7, off, Stream::Always, src);
        expect_equivalent(impl, n, off, off, Stream::Never, src);
      }
    }
  }
}

TEST(CopyKernel, LargeCopiesMatchUpTo8MiB) {
  constexpr std::size_t kMax = 8u << 20;
  std::vector<unsigned char> src(kMax + 64);
  std::mt19937 rng(7);
  for (auto& b : src) b = static_cast<unsigned char>(rng());
  for (const CopyImpl impl : supported_impls()) {
    for (const std::size_t n : {std::size_t{1} << 20, kMax - 63, kMax}) {
      expect_equivalent(impl, n, 3, 5, Stream::Always, src);
      expect_equivalent(impl, n, 0, 0, Stream::Auto, src);
    }
  }
}

TEST(CopyKernel, FuzzRandomSizesAndOffsets) {
  std::mt19937 rng(2026);
  std::vector<unsigned char> src((1u << 20) + 128);
  for (auto& b : src) b = static_cast<unsigned char>(rng());
  const auto impls = supported_impls();
  std::uniform_int_distribution<std::size_t> size_dist(1, 1u << 20);
  std::uniform_int_distribution<std::size_t> off_dist(0, 63);
  for (int i = 0; i < 200; ++i) {
    const CopyImpl impl = impls[static_cast<std::size_t>(i) % impls.size()];
    const std::size_t n = size_dist(rng);
    const Stream st = i % 2 == 0 ? Stream::Always : Stream::Auto;
    expect_equivalent(impl, n, off_dist(rng), off_dist(rng), st, src);
  }
}

TEST(CopyKernel, ZeroBytesIsANoop) {
  unsigned char a = 1, b = 2;
  for (const CopyImpl impl : supported_impls()) {
    hmr::mem::copy_with(impl, &a, &b, 0, Stream::Always);
  }
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(CopyKernel, NtCountersAdvanceOnStreamingPath) {
  const CopyImpl impl = hmr::mem::copy_impl();
  if (impl == CopyImpl::Scalar) {
    GTEST_SKIP() << "scalar has no NT path (documented parity)";
  }
  std::vector<unsigned char> src(1u << 16, 3), dst(1u << 16);
  const auto copies0 = hmr::mem::copy_nt_copies();
  const auto bytes0 = hmr::mem::copy_nt_bytes();
  hmr::mem::copy(dst.data(), src.data(), src.size(), Stream::Always);
  EXPECT_EQ(hmr::mem::copy_nt_copies(), copies0 + 1);
  EXPECT_EQ(hmr::mem::copy_nt_bytes(), bytes0 + src.size());
  // Stream::Never must not count.
  hmr::mem::copy(dst.data(), src.data(), src.size(), Stream::Never);
  EXPECT_EQ(hmr::mem::copy_nt_copies(), copies0 + 1);
}

TEST(CopyKernel, ThresholdGatesAutoStreaming) {
  if (hmr::mem::copy_impl() == CopyImpl::Scalar) {
    GTEST_SKIP() << "scalar has no NT path (documented parity)";
  }
  const auto saved = hmr::mem::copy_nt_threshold();
  std::vector<unsigned char> src(4096, 9), dst(4096);
  hmr::mem::set_copy_nt_threshold(0); // 0 disables NT entirely
  const auto c0 = hmr::mem::copy_nt_copies();
  hmr::mem::copy(dst.data(), src.data(), src.size());
  EXPECT_EQ(hmr::mem::copy_nt_copies(), c0);
  hmr::mem::set_copy_nt_threshold(1024); // now 4 KiB is over threshold
  hmr::mem::copy(dst.data(), src.data(), src.size());
  EXPECT_EQ(hmr::mem::copy_nt_copies(), c0 + 1);
  hmr::mem::set_copy_nt_threshold(saved);
}

TEST(CopyKernelDeathTest, OverlappingRangesAreRejected) {
  std::vector<unsigned char> buf(256, 1);
  EXPECT_DEATH(hmr::mem::copy(buf.data() + 16, buf.data(), 64), "overlap");
  EXPECT_DEATH(hmr::mem::copy(buf.data(), buf.data() + 16, 64), "overlap");
  // Exactly adjacent ranges do not alias and must be accepted.
  hmr::mem::copy(buf.data() + 64, buf.data(), 64);
}

} // namespace
