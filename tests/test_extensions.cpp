// Tests for the future-work extensions: KNL cache-mode model,
// node-level run queue, fair admission, Chrome trace export, and the
// synthetic workload's task-time jitter.

#include <gtest/gtest.h>

#include <sstream>

#include "hw/machine_model.hpp"
#include "ooc/policy_engine.hpp"
#include "sim/sim_executor.hpp"
#include "sim/cluster.hpp"
#include "sim/stencil_workload.hpp"
#include "sim/synthetic_workload.hpp"
#include "trace/tracer.hpp"
#include "util/units.hpp"

namespace hmr {
namespace {

// ---------- cache-mode model ----------

TEST(CacheMode, HitRatioShape) {
  const auto m = hw::knl_flat_all_to_all();
  // Small sets fit entirely (modulo the conflict factor).
  EXPECT_DOUBLE_EQ(m.cache_mode_hit_ratio(1 * GiB), 1.0);
  // At exactly the MCDRAM size, conflicts already bite.
  EXPECT_LT(m.cache_mode_hit_ratio(16 * GiB), 1.0);
  EXPECT_GT(m.cache_mode_hit_ratio(16 * GiB), 0.5);
  // Far out of core: ratio ~ effective_capacity / wss.
  EXPECT_NEAR(m.cache_mode_hit_ratio(64 * GiB),
              16.0 * m.cache_conflict_factor / 64.0, 1e-12);
}

TEST(CacheMode, BandwidthBracketsFlatModes) {
  const auto m = hw::knl_flat_all_to_all();
  // In-core: close to MCDRAM speed.
  EXPECT_GT(m.cache_mode_bw(4 * GiB), 0.9 * m.tier(m.fast).read_bw);
  // Way out of core: *below* flat DDR4 (misses pay read + fill).
  EXPECT_LT(m.cache_mode_bw(96 * GiB), m.tier(m.slow).read_bw);
}

TEST(CacheMode, ComputeTimeMonotoneInWss) {
  const auto m = hw::knl_flat_all_to_all();
  double prev = 0;
  for (std::uint64_t wss : {4ull, 8ull, 16ull, 32ull, 64ull}) {
    // Flat inside the effective capacity (hit ratio pinned at 1),
    // strictly increasing once conflicts and capacity misses start.
    const double t = m.cache_mode_compute_time(64 * MiB, wss * GiB, 64);
    EXPECT_GE(t, prev);
    prev = t;
  }
  EXPECT_GT(m.cache_mode_compute_time(64 * MiB, 64 * GiB, 64),
            m.cache_mode_compute_time(64 * MiB, 16 * GiB, 64));
}

TEST(CacheMode, SimRunsAndBeatsDdrInCore) {
  // 64 PEs so bandwidth (not the per-PE compute floor) dominates.
  sim::StencilWorkload w({.total_bytes = 256 * MiB,
                          .num_chares = 128,
                          .num_pes = 64,
                          .iterations = 2});
  auto model = hw::knl_flat_all_to_all();

  sim::SimConfig cache_cfg;
  cache_cfg.model = model;
  cache_cfg.cache_mode = true;
  const auto cache = sim::SimExecutor(cache_cfg).run(w);
  EXPECT_EQ(cache.tasks_completed, 256u);
  EXPECT_EQ(cache.policy.fetches, 0u); // hardware caching: no migrations

  sim::SimConfig ddr_cfg;
  ddr_cfg.model = model;
  ddr_cfg.strategy = ooc::Strategy::DdrOnly;
  const auto ddr = sim::SimExecutor(ddr_cfg).run(w);
  // 256 MiB working set fits the cache: near-MCDRAM speed.
  EXPECT_LT(cache.total_time, 0.5 * ddr.total_time);
}

TEST(CacheMode, SimLosesToRuntimeOutOfCore) {
  auto model = hw::knl_flat_all_to_all();
  const auto p = sim::StencilWorkload::params_for_reduced(
      32 * GiB, 2 * GiB, model.num_pes, /*iterations=*/3);
  sim::StencilWorkload w(p);

  sim::SimConfig cache_cfg;
  cache_cfg.model = model;
  cache_cfg.cache_mode = true;
  const double t_cache = sim::SimExecutor(cache_cfg).run(w).total_time;

  sim::SimConfig multi_cfg;
  multi_cfg.model = model;
  multi_cfg.strategy = ooc::Strategy::MultiIo;
  const double t_multi = sim::SimExecutor(multi_cfg).run(w).total_time;
  EXPECT_GT(t_cache, 1.5 * t_multi);
}

// ---------- node-level run queue ----------

TEST(NodeRunQueue, CompletesAndNeverSlower) {
  sim::SyntheticWorkload::Params p;
  p.num_blocks = 128;
  p.block_bytes = 8 * MiB;
  p.tasks_per_iteration = 100;
  p.deps_per_task = 2;
  p.num_pes = 8;
  p.wf_min = 1.0;
  p.wf_max = 6.0; // variance: the node queue should help
  sim::SyntheticWorkload w(p);

  auto run = [&](bool node_q) {
    sim::SimConfig cfg;
    cfg.model = hw::knl_flat_all_to_all();
    cfg.model.num_pes = 8;
    cfg.strategy = ooc::Strategy::MultiIo;
    cfg.fast_capacity = 256 * MiB;
    cfg.node_run_queue = node_q;
    sim::SimExecutor ex(cfg);
    return ex.run(w);
  };
  const auto per_pe = run(false);
  const auto node = run(true);
  EXPECT_EQ(per_pe.tasks_completed, 100u);
  EXPECT_EQ(node.tasks_completed, 100u);
  EXPECT_LE(node.total_time, per_pe.total_time * 1.0001);
}

TEST(NodeRunQueue, WorksUnderSyncStrategy) {
  sim::StencilWorkload w({.total_bytes = 64 * MiB,
                          .num_chares = 24, // 3 per PE
                          .num_pes = 8,
                          .iterations = 2});
  sim::SimConfig cfg;
  cfg.model = hw::knl_flat_all_to_all();
  cfg.model.num_pes = 8;
  cfg.strategy = ooc::Strategy::SyncNoIo;
  cfg.fast_capacity = 32 * MiB;
  cfg.node_run_queue = true;
  const auto r = sim::SimExecutor(cfg).run(w);
  EXPECT_EQ(r.tasks_completed, 48u);
}

// ---------- fair admission ----------

TEST(FairAdmission, CapsPerPeClaims) {
  ooc::PolicyEngine::Config cfg;
  cfg.strategy = ooc::Strategy::MultiIo;
  cfg.num_pes = 4;
  cfg.fast_capacity = 400; // fair share = 100
  ooc::PolicyEngine eng(cfg);
  for (ooc::BlockId b = 0; b < 8; ++b) eng.add_block(b, 60);

  // PE 0 floods its queue: with fair admission only one 60-byte task
  // fits its 100-byte share at a time plus the zero-claim guarantee.
  std::vector<ooc::Command> all;
  for (ooc::TaskId t = 1; t <= 4; ++t) {
    ooc::TaskDesc d;
    d.id = t;
    d.pe = 0;
    d.deps = {{t - 1, ooc::AccessMode::ReadWrite}};
    auto c = eng.on_task_arrived(d);
    all.insert(all.end(), c.begin(), c.end());
  }
  std::size_t fetches = 0;
  for (const auto& c : all) fetches += c.kind == ooc::Command::Kind::Fetch;
  // Unbounded greed would admit all 4 (240 <= 400); the fair share
  // admits 1 (progress) and blocks the rest (60 + 60 > 100).
  EXPECT_EQ(fetches, 1u);
  EXPECT_EQ(eng.total_waiting(), 3u);
}

TEST(FairAdmission, DisabledRestoresGreed) {
  ooc::PolicyEngine::Config cfg;
  cfg.strategy = ooc::Strategy::MultiIo;
  cfg.num_pes = 4;
  cfg.fast_capacity = 400;
  cfg.fair_admission = false;
  ooc::PolicyEngine eng(cfg);
  for (ooc::BlockId b = 0; b < 8; ++b) eng.add_block(b, 60);
  std::size_t fetches = 0;
  for (ooc::TaskId t = 1; t <= 4; ++t) {
    ooc::TaskDesc d;
    d.id = t;
    d.pe = 0;
    d.deps = {{t - 1, ooc::AccessMode::ReadWrite}};
    for (const auto& c : eng.on_task_arrived(d)) {
      fetches += c.kind == ooc::Command::Kind::Fetch;
    }
  }
  EXPECT_EQ(fetches, 4u); // greedy drain takes everything that fits
}

// ---------- chrome trace export ----------

TEST(ChromeTrace, EmitsValidEventArray) {
  trace::Tracer t;
  t.record(0, trace::Category::Compute, 0.001, 0.002, 42);
  t.record(1, trace::Category::Prefetch, 0.0, 0.0005);
  std::ostringstream os;
  t.write_chrome_trace(os);
  const std::string out = os.str();
  EXPECT_EQ(out.front(), '[');
  EXPECT_NE(out.find("\"name\":\"compute\""), std::string::npos);
  EXPECT_NE(out.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(out.find("\"ts\":1000.000"), std::string::npos);
  EXPECT_NE(out.find("\"task\":42"), std::string::npos);
  // Exactly two complete events.
  std::size_t events = 0;
  for (std::size_t pos = out.find("\"ph\":\"X\""); pos != std::string::npos;
       pos = out.find("\"ph\":\"X\"", pos + 1)) {
    ++events;
  }
  EXPECT_EQ(events, 2u);
  EXPECT_EQ(out.back(), '\n');
  EXPECT_EQ(out[out.size() - 2], ']');
}

// ---------- hybrid mode ----------

TEST(HybridMode, CacheCapacityOverloadConsistent) {
  const auto m = hw::knl_flat_all_to_all();
  EXPECT_DOUBLE_EQ(m.cache_mode_bw(32 * GiB),
                   m.cache_mode_bw(32 * GiB, m.tier(m.fast).capacity));
  // Smaller cache, lower effective bandwidth out of core.
  EXPECT_LT(m.cache_mode_bw(32 * GiB, 4 * GiB),
            m.cache_mode_bw(32 * GiB, 16 * GiB));
}

TEST(HybridMode, ShrinksThePrefetchBudget) {
  sim::StencilWorkload w({.total_bytes = 256 * MiB,
                          .num_chares = 64,
                          .num_pes = 8,
                          .iterations = 2});
  auto model = hw::knl_flat_all_to_all();
  model.num_pes = 8;
  model.tiers[model.fast].capacity = 128 * MiB;

  auto run = [&](double frac) {
    sim::SimConfig cfg;
    cfg.model = model;
    cfg.strategy = ooc::Strategy::MultiIo;
    cfg.hybrid_cache_fraction = frac;
    sim::SimExecutor ex(cfg);
    return ex.run(w);
  };
  const auto flat = run(0.0);
  const auto hybrid = run(0.5);
  EXPECT_EQ(flat.tasks_completed, hybrid.tasks_completed);
  // Half the budget cannot admit more bytes than the full budget did.
  EXPECT_LE(hybrid.policy.fetch_bytes,
            flat.policy.fetch_bytes + w.total_bytes());
  // Fully-annotated workload: hybrid is never faster than flat.
  EXPECT_GE(hybrid.total_time, flat.total_time * 0.999);
}

TEST(HybridMode, SprPresetSane) {
  const auto m = hw::spr_hbm_flat();
  ASSERT_EQ(m.tiers.size(), 2u);
  EXPECT_EQ(m.tier(m.fast).name, "HBM2e");
  EXPECT_GT(m.tier(m.fast).read_bw, 2.0 * m.tier(m.slow).read_bw);
  EXPECT_EQ(m.tier(m.fast).capacity, 64 * GiB);
  // The runtime works unchanged on the modern node.
  sim::StencilWorkload w({.total_bytes = 128 * MiB,
                          .num_chares = 56,
                          .num_pes = m.num_pes,
                          .iterations = 2});
  sim::SimConfig cfg;
  cfg.model = m;
  cfg.strategy = ooc::Strategy::MultiIo;
  cfg.fast_capacity = 64 * MiB;
  EXPECT_EQ(sim::SimExecutor(cfg).run(w).tasks_completed, 112u);
}

// ---------- multi-node cluster model ----------

TEST(Cluster, HaloScalesWithSurface) {
  // 8x the volume -> 4x the surface.
  const auto h1 = sim::halo_bytes(4 * GiB);
  const auto h8 = sim::halo_bytes(32 * GiB);
  EXPECT_NEAR(static_cast<double>(h8) / static_cast<double>(h1), 4.0,
              0.05);
}

TEST(Cluster, HaloTimeLatencyVsBandwidthRegimes) {
  sim::NetworkModel net;
  // Tiny halo: latency-bound (6 messages).
  EXPECT_NEAR(sim::halo_time(net, 64), 6 * net.latency, 1e-6);
  // Huge halo: bandwidth-bound.
  const std::uint64_t big = 1ull << 30;
  EXPECT_NEAR(sim::halo_time(net, big),
              static_cast<double>(big) / net.injection_bw, 1e-3);
}

TEST(Cluster, SingleNodeHasNoComm) {
  sim::ClusterParams p;
  p.nodes = 1;
  p.bytes_per_node = 1 * GiB;
  p.reduced_bytes = 256 * MiB;
  p.iterations = 2;
  const auto r = sim::run_cluster(p);
  EXPECT_EQ(r.halo_bytes_per_node, 0u);
  EXPECT_DOUBLE_EQ(r.comm_fraction, 0.0);
  EXPECT_GT(r.iteration_s, 0.0);
}

TEST(Cluster, WeakScalingPreservesNodeSpeedup) {
  sim::ClusterParams base;
  // Shrink the node's fast tier so a 2 GiB per-node set is out of core
  // (the regime where the runtime helps) while the test stays fast.
  base.node.tiers[base.node.fast].capacity = 512 * MiB;
  base.bytes_per_node = 2 * GiB;
  base.reduced_bytes = 128 * MiB;
  base.iterations = 2;

  auto at = [&](int n, ooc::Strategy s) {
    sim::ClusterParams p = base;
    p.nodes = n;
    p.strategy = s;
    return sim::run_cluster(p);
  };
  for (int n : {2, 16}) {
    const auto naive = at(n, ooc::Strategy::Naive);
    const auto multi = at(n, ooc::Strategy::MultiIo);
    EXPECT_GT(naive.iteration_s / multi.iteration_s, 1.2)
        << "at " << n << " nodes";
    // Weak scaling: per-node halo identical across node counts.
    EXPECT_EQ(naive.halo_bytes_per_node, multi.halo_bytes_per_node);
  }
}

TEST(Cluster, SweepIsDeterministicAndOrdered) {
  sim::ClusterParams base;
  base.bytes_per_node = 1 * GiB;
  base.reduced_bytes = 256 * MiB;
  base.iterations = 2;
  const auto a = sim::weak_scaling_sweep(base, {1, 2, 4});
  const auto b = sim::weak_scaling_sweep(base, {1, 2, 4});
  ASSERT_EQ(a.size(), 3u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].total_s, b[i].total_s);
  }
  // Comm appears exactly when nodes > 1.
  EXPECT_DOUBLE_EQ(a[0].comm_fraction, 0.0);
  EXPECT_GT(a[1].comm_fraction, 0.0);
}

// ---------- synthetic jitter ----------

TEST(SyntheticJitter, WorkFactorsWithinRangeAndDeterministic) {
  sim::SyntheticWorkload::Params p;
  p.wf_min = 2.0;
  p.wf_max = 9.0;
  p.seed = 31;
  sim::SyntheticWorkload a(p), b(p);
  const auto ta = a.iteration_tasks(0);
  const auto tb = b.iteration_tasks(0);
  double lo = 1e9, hi = 0;
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_DOUBLE_EQ(ta[i].work_factor, tb[i].work_factor);
    lo = std::min(lo, ta[i].work_factor);
    hi = std::max(hi, ta[i].work_factor);
  }
  EXPECT_GE(lo, 2.0);
  EXPECT_LE(hi, 9.0);
  EXPECT_GT(hi - lo, 1.0); // actually spread out
}

} // namespace
} // namespace hmr
