// Historical observability plane: HistoryBuffer sampling/rates,
// DecisionLog seqlock ring, and EventRing drop accounting under
// sustained overflow (docs/OBSERVABILITY.md §9).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "adapt/decision_sink.hpp"
#include "telemetry/decision_log.hpp"
#include "telemetry/history.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/ring.hpp"
#include "util/json.hpp"

namespace {

using namespace hmr;

// ---- HistoryBuffer ----

class HistoryTest : public ::testing::Test {
protected:
  telemetry::MetricsRegistry reg;
  double now = 0;
  std::unique_ptr<telemetry::HistoryBuffer> hist;

  // HistoryBuffer holds a mutex (not movable): build into the fixture.
  telemetry::HistoryBuffer& make(std::size_t cap) {
    hist = std::make_unique<telemetry::HistoryBuffer>(reg, cap);
    hist->set_clock([this] { return now; });
    return *hist;
  }
};

TEST_F(HistoryTest, RatesFromConsecutiveSamples) {
  auto& c = reg.counter("hmr_test_total", "");
  auto& h = make(16);
  c.set(100);
  now = 1.0;
  h.sample();
  c.set(300);
  now = 3.0;
  h.sample();

  const auto series = h.series("hmr_test_total");
  ASSERT_EQ(series.size(), 1u);
  ASSERT_EQ(series[0].points.size(), 2u);
  EXPECT_EQ(series[0].type, std::string("counter"));
  EXPECT_DOUBLE_EQ(series[0].points[0].rate, 0);   // no predecessor
  EXPECT_DOUBLE_EQ(series[0].points[1].value, 300);
  EXPECT_DOUBLE_EQ(series[0].points[1].rate, 100); // 200 over 2 s
}

TEST_F(HistoryTest, ZeroElapsedWindowYieldsZeroRate) {
  auto& c = reg.counter("hmr_test_total", "");
  auto& h = make(16);
  c.set(10);
  now = 2.0;
  h.sample();
  c.set(50);
  h.sample(); // same timestamp: dt = 0
  const auto series = h.series("hmr_test_total");
  ASSERT_EQ(series.size(), 1u);
  ASSERT_EQ(series[0].points.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0].points[1].rate, 0);
}

TEST_F(HistoryTest, CounterResetUsesNewValueAsDelta) {
  auto& c = reg.counter("hmr_test_total", "");
  auto& h = make(16);
  c.set(1000);
  now = 1.0;
  h.sample();
  c.set(30); // source restarted
  now = 2.0;
  h.sample();
  const auto series = h.series("hmr_test_total");
  ASSERT_EQ(series[0].points.size(), 2u);
  // Prometheus reset convention: delta = v_cur, not v_cur - v_prev.
  EXPECT_DOUBLE_EQ(series[0].points[1].rate, 30);
}

TEST_F(HistoryTest, GaugeSeriesCarryNoCounterSemantics) {
  auto& g = reg.gauge("hmr_test_gauge", "");
  auto& h = make(16);
  g.set(5);
  now = 1.0;
  h.sample();
  g.set(2); // gauges go down without being a "reset"
  now = 2.0;
  h.sample();
  const auto series = h.series("hmr_test_gauge");
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].type, std::string("gauge"));
  EXPECT_DOUBLE_EQ(series[0].points[1].value, 2);
}

TEST_F(HistoryTest, RingWrapKeepsNewestAndCountsTotal) {
  auto& c = reg.counter("hmr_test_total", "");
  auto& h = make(4);
  for (int i = 0; i < 10; ++i) {
    c.set(static_cast<std::uint64_t>(i));
    now = static_cast<double>(i);
    h.sample();
  }
  EXPECT_EQ(h.size(), 4u);
  EXPECT_EQ(h.total_samples(), 10u);
  const auto series = h.series("hmr_test_total");
  ASSERT_EQ(series[0].points.size(), 4u);
  EXPECT_DOUBLE_EQ(series[0].points.front().time, 6.0); // oldest kept
  EXPECT_DOUBLE_EQ(series[0].points.back().time, 9.0);
  // Rates keep working across the wrap: +1 per second throughout.
  EXPECT_DOUBLE_EQ(series[0].points.back().rate, 1.0);
}

TEST_F(HistoryTest, WindowFiltersOldPoints) {
  auto& c = reg.counter("hmr_test_total", "");
  auto& h = make(16);
  for (int i = 0; i < 8; ++i) {
    c.set(static_cast<std::uint64_t>(i * 10));
    now = static_cast<double>(i);
    h.sample();
  }
  const auto series = h.series("hmr_test_total", /*window=*/2.5);
  ASSERT_EQ(series.size(), 1u);
  // newest.time = 7, cutoff 4.5 -> points at t = 5, 6, 7.
  ASSERT_EQ(series[0].points.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0].points.front().time, 5.0);
  // Rate at the window edge still derives from its out-of-window
  // predecessor (full retained history is used for deltas).
  EXPECT_DOUBLE_EQ(series[0].points.front().rate, 10.0);
}

TEST_F(HistoryTest, WriteJsonParsesAndListsMetrics) {
  reg.counter("hmr_a_total", "").set(1);
  reg.gauge("hmr_b", "").set(2);
  auto& h = make(8);
  now = 1.0;
  h.sample();
  now = 2.0;
  h.sample();

  std::ostringstream index;
  h.write_json(index);
  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(index.str(), v, &err)) << err;
  EXPECT_EQ(v.find("samples")->num_or(-1), 2);
  ASSERT_TRUE(v.find("metrics")->is_array());
  EXPECT_GE(v.find("metrics")->arr.size(), 2u);

  std::ostringstream one;
  h.write_json(one, "hmr_a_total", 0);
  ASSERT_TRUE(json::parse(one.str(), v, &err)) << err;
  EXPECT_EQ(v.find("metric")->str_or(""), "hmr_a_total");
  ASSERT_TRUE(v.find("series")->is_array());
  ASSERT_EQ(v.find("series")->arr.size(), 1u);
  EXPECT_EQ(v.find("series")->arr[0].find("points")->arr.size(), 2u);
}

TEST_F(HistoryTest, RateBetweenEdgeRules) {
  using HB = telemetry::HistoryBuffer;
  EXPECT_DOUBLE_EQ(HB::rate_between(1.0, 10, 3.0, 30), 10.0);
  EXPECT_DOUBLE_EQ(HB::rate_between(2.0, 10, 2.0, 30), 0.0); // dt = 0
  EXPECT_DOUBLE_EQ(HB::rate_between(3.0, 10, 2.0, 30), 0.0); // dt < 0
  EXPECT_DOUBLE_EQ(HB::rate_between(1.0, 100, 2.0, 40), 40.0); // reset
}

// ---- DecisionLog ----

adapt::DecisionEvent advice_event(ooc::BlockId b, double hotness) {
  adapt::DecisionEvent e;
  e.kind = adapt::DecisionKind::AdvisePin;
  e.block = b;
  e.bytes = 1024;
  e.hotness = hotness;
  e.pin = true;
  return e;
}

adapt::DecisionEvent governor_event(std::int32_t phase, bool changed) {
  adapt::DecisionEvent e;
  e.kind = adapt::DecisionKind::GovernorPhase;
  e.phase = phase;
  e.refetch_ratio = 2.0;
  e.changed = changed;
  return e;
}

TEST(DecisionLog, RecordsInOrderWithTimestamps) {
  telemetry::DecisionLog log(8);
  double now = 0;
  log.set_clock([&now] { return now; });
  for (int i = 0; i < 5; ++i) {
    now = static_cast<double>(i);
    log.record(advice_event(static_cast<ooc::BlockId>(i), i * 1.0));
  }
  EXPECT_EQ(log.total_recorded(), 5u);
  EXPECT_EQ(log.overwritten(), 0u);
  const auto recs = log.snapshot();
  ASSERT_EQ(recs.size(), 5u);
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].seq, i);
    EXPECT_DOUBLE_EQ(recs[i].time, static_cast<double>(i));
    EXPECT_EQ(recs[i].ev.block, static_cast<ooc::BlockId>(i));
  }
}

TEST(DecisionLog, WrapKeepsNewestAndCountsOverwritten) {
  telemetry::DecisionLog log(4);
  for (int i = 0; i < 11; ++i) {
    log.record(advice_event(static_cast<ooc::BlockId>(i), 0));
  }
  EXPECT_EQ(log.total_recorded(), 11u);
  EXPECT_EQ(log.overwritten(), 7u);
  const auto recs = log.snapshot();
  ASSERT_EQ(recs.size(), 4u);
  EXPECT_EQ(recs.front().seq, 7u);
  EXPECT_EQ(recs.back().seq, 10u);
}

TEST(DecisionLog, BlockFilterKeepsGovernorContext) {
  telemetry::DecisionLog log(32);
  log.record(advice_event(1, 0));
  log.record(advice_event(2, 0));
  log.record(governor_event(0, true));
  log.record(advice_event(2, 1));
  const auto recs = log.snapshot_block(2);
  // Block 2's two advisor events plus the governor record (phase
  // context always survives a block filter).
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].ev.block, 2u);
  EXPECT_EQ(recs[1].ev.kind, adapt::DecisionKind::GovernorPhase);
  EXPECT_EQ(recs[2].ev.block, 2u);
}

TEST(DecisionLog, JsonAndCsvRoundTrip) {
  telemetry::DecisionLog log(8);
  log.record(advice_event(7, 3.5));
  log.record(governor_event(1, true));
  const auto recs = log.snapshot();

  std::ostringstream js;
  telemetry::DecisionLog::write_json(js, recs, log.total_recorded(),
                                     log.overwritten());
  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(js.str(), v, &err)) << err;
  EXPECT_EQ(v.find("total")->num_or(-1), 2);
  ASSERT_EQ(v.find("decisions")->arr.size(), 2u);
  EXPECT_EQ(v.find("decisions")->arr[0].find("kind")->str_or(""), "pin");
  EXPECT_EQ(v.find("decisions")->arr[1].find("kind")->str_or(""),
            "governor");
  EXPECT_TRUE(v.find("decisions")->arr[1].find("changed")->bool_or(false));

  std::ostringstream csv;
  telemetry::DecisionLog::write_csv(csv, recs);
  const std::string text = csv.str();
  EXPECT_NE(text.find("seq,time,kind"), std::string::npos);
  EXPECT_NE(text.find("pin"), std::string::npos);
  EXPECT_NE(text.find("governor"), std::string::npos);
}

TEST(DecisionLog, ConcurrentReadersSeeConsistentRecords) {
  telemetry::DecisionLog log(64);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      // hotness mirrors block id: a torn record would disagree.
      auto e = advice_event(static_cast<ooc::BlockId>(i % 1024),
                            static_cast<double>(i % 1024));
      log.record(e);
      ++i;
    }
  });
  for (int r = 0; r < 200; ++r) {
    const auto recs = log.snapshot();
    std::uint64_t prev = 0;
    bool first = true;
    for (const auto& rec : recs) {
      EXPECT_EQ(rec.ev.block, static_cast<ooc::BlockId>(
                                  static_cast<std::uint64_t>(rec.ev.hotness)))
          << "torn decision record";
      if (!first) {
        EXPECT_GT(rec.seq, prev);
      }
      prev = rec.seq;
      first = false;
    }
  }
  stop.store(true);
  writer.join();
}

// ---- EventRing drop accounting under sustained overflow ----

TEST(EventRing, SustainedOverflowCountsEveryDrop) {
  telemetry::EventRing<int> ring(8); // power of two, kept as-is
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
  // Ring full and nobody draining: every further push must fail and
  // count, no matter how long the storm lasts.
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(ring.try_push(100 + i));
  EXPECT_EQ(ring.dropped(), 1000u);

  std::vector<int> out;
  EXPECT_EQ(ring.drain(out), 8u);
  ASSERT_EQ(out.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], i); // drops lost, FIFO kept
  // Capacity is available again after the drain; the drop counter is
  // cumulative (evidence of the storm survives).
  EXPECT_TRUE(ring.try_push(42));
  EXPECT_EQ(ring.dropped(), 1000u);
}

TEST(EventRing, InterleavedOverflowAccounting) {
  telemetry::EventRing<int> ring(8);
  std::uint64_t expect_dropped = 0;
  std::vector<int> out;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 12; ++i) {
      if (!ring.try_push(i)) ++expect_dropped;
    }
    ring.drain(out);
    out.clear();
  }
  EXPECT_EQ(ring.dropped(), expect_dropped);
  EXPECT_EQ(ring.dropped(), 50u * 4u); // 12 pushes into 8 slots per round
}

} // namespace
