// Tests for the live-introspection layer: the status server (routes,
// query parsing, endpoints against a live runtime), the stall
// watchdog (deterministic evaluate() logic plus a real injected-stall
// trip), and the engine invariant auditor (gating, clean runs,
// sensitivity to claimed-but-false quiescence).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "ooc/policy_engine.hpp"
#include "rt/io_handle.hpp"
#include "rt/runtime.hpp"
#include "telemetry/audit.hpp"
#include "telemetry/serve.hpp"
#include "telemetry/watchdog.hpp"

namespace hmr {
namespace {

// ---- tiny blocking HTTP client (tests only) ----

std::string http_get(std::uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  const std::string req =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  EXPECT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break; // server closes after the response
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

std::string temp_path(const char* stem) {
  return ::testing::TempDir() + stem;
}

// ---- StatusServer ----

TEST(StatusServer, RoutesAndQueryDecoding) {
  telemetry::StatusServer srv;
  srv.route("/echo", [](const telemetry::StatusServer::Request& rq) {
    telemetry::StatusServer::Response r;
    const auto it = rq.query.find("x");
    r.body = it == rq.query.end() ? "(none)" : it->second;
    return r;
  });
  std::string err;
  ASSERT_TRUE(srv.start(0, &err)) << err;
  ASSERT_NE(srv.port(), 0);

  const std::string resp = http_get(srv.port(), "/echo?x=a%20b%2Fc+d");
  EXPECT_NE(resp.find("200 OK"), std::string::npos);
  EXPECT_NE(resp.find("a b/c d"), std::string::npos);
  srv.stop();
  EXPECT_FALSE(srv.running());
}

TEST(StatusServer, UnknownPathIs404ListingRoutes) {
  telemetry::StatusServer srv;
  srv.route("/known", [](const telemetry::StatusServer::Request&) {
    return telemetry::StatusServer::Response{};
  });
  ASSERT_TRUE(srv.start(0));
  const std::string resp = http_get(srv.port(), "/nope");
  EXPECT_NE(resp.find("404"), std::string::npos);
  EXPECT_NE(resp.find("/known"), std::string::npos);
  srv.stop();
}

TEST(StatusServer, ParseQuery) {
  const auto q =
      telemetry::StatusServer::parse_query("id=7&name=a%20b&flag");
  EXPECT_EQ(q.at("id"), "7");
  EXPECT_EQ(q.at("name"), "a b");
  EXPECT_EQ(q.at("flag"), "");
}

// ---- Watchdog: deterministic tick logic via evaluate() ----

struct FakeSignals {
  bool loaded = true;
  std::uint64_t progress = 0;
  double fetch_age = -1;
  double fetch_p99 = 0;
  std::string dumped;

  telemetry::Watchdog::Hooks hooks() {
    telemetry::Watchdog::Hooks h;
    h.under_load = [this] { return loaded; };
    h.progress = [this] { return progress; };
    h.fetch_age = [this] { return fetch_age; };
    h.fetch_p99 = [this] { return fetch_p99; };
    h.dump = [this](std::ostream& os) {
      os << "BUNDLE";
      dumped += "BUNDLE";
    };
    return h;
  }
};

telemetry::Watchdog::Config warn_cfg(double stall_seconds = 2.0) {
  telemetry::Watchdog::Config c;
  c.stall_seconds = stall_seconds;
  c.escalation = telemetry::Watchdog::Escalation::Warn;
  return c;
}

TEST(Watchdog, NoTripWhileProgressing) {
  FakeSignals sig;
  telemetry::Watchdog wd(warn_cfg(), sig.hooks());
  for (int i = 0; i < 10; ++i) {
    ++sig.progress;
    wd.evaluate(i * 1.0);
  }
  EXPECT_EQ(wd.trips(), 0u);
  EXPECT_FALSE(wd.stalled());
}

TEST(Watchdog, TripsOnceAfterStallWindowAndRearms) {
  FakeSignals sig;
  telemetry::Watchdog wd(warn_cfg(/*stall_seconds=*/2.0), sig.hooks());
  sig.progress = 5;
  wd.evaluate(0.0); // progress observed, window re-armed
  wd.evaluate(0.5); // first frozen observation: window opens here
  wd.evaluate(2.0); // frozen 1.5 s: below the window
  EXPECT_EQ(wd.trips(), 0u);
  wd.evaluate(3.0); // frozen 2.5 s: trip
  EXPECT_EQ(wd.trips(), 1u);
  EXPECT_TRUE(wd.stalled());
  EXPECT_NE(wd.last_reason().find("no progress"), std::string::npos);
  wd.evaluate(5.0); // still frozen: one report per episode
  EXPECT_EQ(wd.trips(), 1u);
  ++sig.progress; // forward motion clears the episode
  wd.evaluate(5.5);
  EXPECT_FALSE(wd.stalled());
  wd.evaluate(6.0); // frozen again: second window opens
  wd.evaluate(9.0); // frozen 3 s: a second episode
  EXPECT_EQ(wd.trips(), 2u);
}

TEST(Watchdog, IdleNeverTrips) {
  FakeSignals sig;
  sig.loaded = false;
  telemetry::Watchdog wd(warn_cfg(), sig.hooks());
  wd.evaluate(0.0);
  wd.evaluate(100.0); // frozen forever, but nothing outstanding
  EXPECT_EQ(wd.trips(), 0u);
}

TEST(Watchdog, StuckFetchTripsEvenWithProgress) {
  FakeSignals sig;
  sig.fetch_age = 10.0; // one fetch stuck for 10 s
  sig.fetch_p99 = 0.1;  // limit = max(2.0, 8 x 0.1) = 2.0
  telemetry::Watchdog wd(warn_cfg(), sig.hooks());
  ++sig.progress; // other work still retires
  wd.evaluate(0.0);
  EXPECT_EQ(wd.trips(), 1u);
  EXPECT_NE(wd.last_reason().find("fetch in flight"), std::string::npos);
}

TEST(Watchdog, DumpEscalationWritesBundleToFile) {
  FakeSignals sig;
  telemetry::Watchdog::Config c;
  c.stall_seconds = 1.0;
  c.escalation = telemetry::Watchdog::Escalation::Dump;
  c.dump_path = temp_path("wd_dump.txt");
  std::remove(c.dump_path.c_str());
  telemetry::Watchdog wd(c, sig.hooks());
  wd.evaluate(0.0);
  wd.evaluate(1.5);
  ASSERT_EQ(wd.trips(), 1u);
  std::ifstream f(c.dump_path);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_NE(ss.str().find("watchdog trip"), std::string::npos);
  EXPECT_NE(ss.str().find("BUNDLE"), std::string::npos);
}

TEST(Watchdog, WarnEscalationNeverDumps) {
  FakeSignals sig;
  telemetry::Watchdog wd(warn_cfg(1.0), sig.hooks());
  wd.evaluate(0.0);
  wd.evaluate(2.0);
  EXPECT_EQ(wd.trips(), 1u);
  EXPECT_TRUE(sig.dumped.empty());
}

// ---- audit plumbing ----

TEST(Audit, EnabledPrecedence) {
  ::unsetenv("HMR_AUDIT");
  EXPECT_TRUE(telemetry::audit_enabled(1));
  EXPECT_FALSE(telemetry::audit_enabled(0));
  ::setenv("HMR_AUDIT", "0", 1);
  EXPECT_FALSE(telemetry::audit_enabled(1)); // env beats the knob
  ::setenv("HMR_AUDIT", "1", 1);
  EXPECT_TRUE(telemetry::audit_enabled(0));
  ::unsetenv("HMR_AUDIT");
}

TEST(Audit, FormatAndJson) {
  telemetry::AuditReport r;
  r.time = 1.5;
  r.at_quiescence = true;
  EXPECT_NE(telemetry::format_audit(r).find("clean"), std::string::npos);
  r.violations.push_back("used 10 != 20 \"quoted\"");
  const std::string text = telemetry::format_audit(r);
  EXPECT_NE(text.find("1 violation"), std::string::npos);
  EXPECT_NE(text.find("used 10 != 20"), std::string::npos);
  std::ostringstream os;
  telemetry::write_audit_json(os, r);
  EXPECT_NE(os.str().find("\"ok\":false"), std::string::npos);
  EXPECT_NE(os.str().find("\\\"quoted\\\""), std::string::npos);
}

TEST(AuditDeathTest, CheckAuditAbortsOnViolations) {
  telemetry::AuditReport r;
  r.violations.push_back("synthetic divergence");
  EXPECT_DEATH(telemetry::check_audit(r), "invariant audit failed");
}

// The auditor must be *sensitive*, not just quiet on healthy runs: a
// mid-flight engine audited against a (false) claim of quiescence has
// held refcounts and an unfinished migration to object to.
TEST(Audit, EngineAuditFlagsFalseQuiescenceClaim) {
  ooc::PolicyEngine::Config c;
  c.strategy = ooc::Strategy::MultiIo;
  c.num_pes = 1;
  c.fast_capacity = 100;
  ooc::PolicyEngine e(c);
  e.add_block(0, 60); // slow-resident under a movement strategy
  ooc::TaskDesc t;
  t.id = 1;
  t.pe = 0;
  t.deps.push_back({0, ooc::AccessMode::ReadWrite});
  const auto cmds = e.on_task_arrived(t);
  ASSERT_FALSE(cmds.empty()); // a fetch is now in flight
  EXPECT_TRUE(e.audit_invariants(/*at_quiescence=*/false).empty());
  EXPECT_FALSE(e.audit_invariants(/*at_quiescence=*/true).empty());
}

// ---- runtime integration ----

rt::Runtime::Config busy_config(int pes = 2) {
  rt::Runtime::Config cfg;
  cfg.num_pes = pes;
  cfg.mem_scale = 1.0 / 4096; // 4 MiB fast / 24 MiB slow
  return cfg;
}

void run_migrating_workload(rt::Runtime& rt, int rounds = 3) {
  std::vector<rt::IoHandle<double>> blocks;
  for (int i = 0; i < 12; ++i) {
    blocks.emplace_back(rt, 64 * 1024); // 512 KiB each > fast tier sum
  }
  for (int r = 0; r < rounds; ++r) {
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      auto& blk = blocks[i];
      rt.send_prefetch(static_cast<int>(i) % rt.num_pes(),
                       {blk.dep(ooc::AccessMode::ReadWrite)},
                       [&blk] { blk[0] += 1.0; });
    }
    rt.wait_idle();
  }
}

TEST(RuntimeIntrospect, StatusEndpointsEndToEnd) {
  auto cfg = busy_config();
  cfg.serve_port = 0; // any free loopback port
  rt::Runtime rt(cfg);
  ASSERT_NE(rt.serve_port(), 0);
  run_migrating_workload(rt);

  EXPECT_NE(http_get(rt.serve_port(), "/healthz").find("ok"),
            std::string::npos);

  const std::string status = http_get(rt.serve_port(), "/status");
  EXPECT_NE(status.find("200 OK"), std::string::npos);
  EXPECT_NE(status.find("\"num_pes\":2"), std::string::npos);
  EXPECT_NE(status.find("\"tiers\":["), std::string::npos);
  EXPECT_NE(status.find("\"pes\":["), std::string::npos);

  const std::string metrics = http_get(rt.serve_port(), "/metrics");
  EXPECT_NE(metrics.find("hmr_policy_tasks_run_total"),
            std::string::npos);
  EXPECT_NE(metrics.find("hmr_tier_used_bytes"), std::string::npos);

  const std::string blocks = http_get(rt.serve_port(), "/blocks?id=0");
  EXPECT_NE(blocks.find("\"transitions\":["), std::string::npos);
  EXPECT_NE(blocks.find("\"fetch\":true"), std::string::npos);
  EXPECT_NE(http_get(rt.serve_port(), "/blocks").find("400"),
            std::string::npos);
  EXPECT_NE(http_get(rt.serve_port(), "/blocks?id=junk").find("400"),
            std::string::npos);

  // No cluster sim attached: the route exists but answers 404.
  EXPECT_NE(http_get(rt.serve_port(), "/cluster").find("404"),
            std::string::npos);
}

TEST(RuntimeIntrospect, ClusterRouteServesAttachedSnapshot) {
  auto cfg = busy_config();
  cfg.serve_port = 0;
  cfg.cluster_json = [] {
    return std::string("{\"nodes\":4,\"halo_messages\":42}");
  };
  rt::Runtime rt(cfg);
  ASSERT_NE(rt.serve_port(), 0);
  const std::string resp = http_get(rt.serve_port(), "/cluster");
  EXPECT_NE(resp.find("200 OK"), std::string::npos);
  EXPECT_NE(resp.find("application/json"), std::string::npos);
  EXPECT_NE(resp.find("\"halo_messages\":42"), std::string::npos);
}

TEST(RuntimeIntrospect, AttribRouteServesStallDecomposition) {
  auto cfg = busy_config();
  cfg.serve_port = 0;
  rt::Runtime rt(cfg);
  ASSERT_NE(rt.serve_port(), 0);
  run_migrating_workload(rt);

  const std::string resp = http_get(rt.serve_port(), "/attrib");
  EXPECT_NE(resp.find("200 OK"), std::string::npos);
  EXPECT_NE(resp.find("application/json"), std::string::npos);
  EXPECT_NE(resp.find("\"buckets\":{"), std::string::npos);
  EXPECT_NE(resp.find("\"compute\":"), std::string::npos);
  EXPECT_NE(resp.find("\"fetch_wait\":"), std::string::npos);
  // Every retired task's buckets summed to wall time.
  EXPECT_NE(resp.find("\"sum_violations\":0"), std::string::npos);
  // All 36 tasks from the migrating workload are attributed.
  EXPECT_NE(resp.find("\"tasks\":36"), std::string::npos) << resp;
}

TEST(RuntimeIntrospect, HistoryRejectsMalformedWindow) {
  auto cfg = busy_config();
  cfg.serve_port = 0;
  cfg.metrics = true; // history needs the registry (depth default 240)
  rt::Runtime rt(cfg);
  ASSERT_NE(rt.serve_port(), 0);
  run_migrating_workload(rt, /*rounds=*/1);

  // Valid windows (including zero and float seconds) still answer 200.
  EXPECT_NE(http_get(rt.serve_port(), "/history?window=2.5")
                .find("200 OK"),
            std::string::npos);
  // strtod accepts "nan"/"inf"/negatives; the route must not.
  for (const char* bad : {"nan", "inf", "-1", "junk", "1e9x"}) {
    const std::string resp =
        http_get(rt.serve_port(), std::string("/history?window=") + bad);
    EXPECT_NE(resp.find("400"), std::string::npos) << bad;
    EXPECT_NE(resp.find("bad window"), std::string::npos) << bad;
    EXPECT_NE(resp.find("usage:"), std::string::npos) << bad;
  }
}

TEST(RuntimeIntrospect, ClusterMetricsRoutesServeAttachedFederation) {
  // Unset providers answer 404 with a wiring hint...
  {
    auto cfg = busy_config();
    cfg.serve_port = 0;
    rt::Runtime rt(cfg);
    EXPECT_NE(http_get(rt.serve_port(), "/cluster/metrics")
                  .find("no federated metrics attached"),
              std::string::npos);
    EXPECT_NE(http_get(rt.serve_port(), "/cluster/attrib").find("404"),
              std::string::npos);
  }
  // ...and wired providers serve their payload verbatim.
  auto cfg = busy_config();
  cfg.serve_port = 0;
  cfg.cluster_metrics_json = [] {
    return std::string("{\"total_nodes\":4,\"nodes\":[]}\n");
  };
  cfg.cluster_attrib_json = [] {
    return std::string("{\"total_nodes\":4,\"nodes\":[{\"node\":\"n0\"}]}\n");
  };
  rt::Runtime rt(cfg);
  const std::string metrics = http_get(rt.serve_port(), "/cluster/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("\"total_nodes\":4"), std::string::npos);
  const std::string attrib = http_get(rt.serve_port(), "/cluster/attrib");
  EXPECT_NE(attrib.find("200 OK"), std::string::npos);
  EXPECT_NE(attrib.find("\"node\":\"n0\""), std::string::npos);
}

TEST(RuntimeIntrospect, WatchdogSilentOnHealthyRun) {
  auto cfg = busy_config();
  cfg.watchdog = true;
  cfg.watchdog_cfg.interval = std::chrono::milliseconds(20);
  cfg.watchdog_cfg.stall_seconds = 5.0; // far above any healthy pause
  rt::Runtime rt(cfg);
  run_migrating_workload(rt);
  ASSERT_NE(rt.watchdog(), nullptr);
  EXPECT_EQ(rt.watchdog()->trips(), 0u);
}

TEST(RuntimeIntrospect, WatchdogTripsOnInjectedStallAndDumps) {
  auto cfg = busy_config();
  cfg.metrics = true; // the dump's "==== metrics ====" section
  cfg.watchdog = true;
  cfg.watchdog_cfg.interval = std::chrono::milliseconds(20);
  cfg.watchdog_cfg.stall_seconds = 0.2;
  cfg.watchdog_cfg.escalation = telemetry::Watchdog::Escalation::Dump;
  cfg.watchdog_cfg.dump_path = temp_path("rt_stall_dump.txt");
  std::remove(cfg.watchdog_cfg.dump_path.c_str());
  rt::Runtime rt(cfg);
  // The injected stall: one message whose body blocks well past the
  // stall window while a second one waits behind it, so the runtime
  // is under load with its progress counter frozen.
  rt.send(0, [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(800));
  });
  rt.send(0, [] {});
  rt.wait_idle();
  ASSERT_NE(rt.watchdog(), nullptr);
  EXPECT_GE(rt.watchdog()->trips(), 1u);
  std::ifstream f(cfg.watchdog_cfg.dump_path);
  ASSERT_TRUE(f.good()) << "watchdog trip produced no dump file";
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_NE(ss.str().find("watchdog trip"), std::string::npos);
  EXPECT_NE(ss.str().find("==== status ===="), std::string::npos);
  EXPECT_NE(ss.str().find("==== metrics ===="), std::string::npos);
}

TEST(RuntimeIntrospect, AuditCleanAtQuiescenceBothEngines) {
  for (const auto strategy :
       {ooc::Strategy::MultiIo, ooc::Strategy::SingleIo}) {
    auto cfg = busy_config();
    cfg.strategy = strategy;
    cfg.audit = 1;
    rt::Runtime rt(cfg);
    run_migrating_workload(rt);
    const telemetry::AuditReport r = rt.audit_now();
    EXPECT_TRUE(r.ok()) << telemetry::format_audit(r);
    EXPECT_TRUE(r.at_quiescence);
  }
}

TEST(RuntimeIntrospect, WaitIdleRunsAuditsWhenEnabled) {
  ::unsetenv("HMR_AUDIT");
  auto cfg = busy_config();
  cfg.audit = 1;
  rt::Runtime rt(cfg);
  run_migrating_workload(rt, /*rounds=*/2);
  EXPECT_GE(rt.audit_runs(), 2u);
  const std::string status = rt.status_json();
  EXPECT_NE(status.find("\"audit\":{"), std::string::npos);
  EXPECT_NE(status.find("\"ok\":true"), std::string::npos);
}

} // namespace
} // namespace hmr
