// Tests for the greedy (LPT) load balancer.

#include <gtest/gtest.h>

#include <algorithm>

#include "rt/chare.hpp"
#include "rt/load_balancer.hpp"
#include "rt/runtime.hpp"
#include "util/rng.hpp"

namespace hmr::rt {
namespace {

double max_pe_load(const std::vector<double>& loads,
                   const std::vector<int>& assign, int pes) {
  const auto v = pe_loads(loads, assign, pes);
  return *std::max_element(v.begin(), v.end());
}

TEST(GreedyAssign, UniformLoadsBalanceExactly) {
  const std::vector<double> loads(16, 1.0);
  const auto a = greedy_assign(loads, 4);
  const auto per_pe = pe_loads(loads, a, 4);
  for (double l : per_pe) EXPECT_DOUBLE_EQ(l, 4.0);
}

TEST(GreedyAssign, HeavyChareGoesAlone) {
  // One chare as heavy as all others combined: it must get its own PE.
  std::vector<double> loads{8.0, 1, 1, 1, 1, 1, 1, 1, 1};
  const auto a = greedy_assign(loads, 2);
  const auto per_pe = pe_loads(loads, a, 2);
  EXPECT_DOUBLE_EQ(per_pe[static_cast<std::size_t>(a[0])], 8.0);
  EXPECT_DOUBLE_EQ(per_pe[static_cast<std::size_t>(a[0] ^ 1)], 8.0);
}

TEST(GreedyAssign, WithinGrahamBound) {
  Xoshiro256 rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const int pes = 2 + static_cast<int>(rng.below(14));
    std::vector<double> loads(32 + rng.below(96));
    double sum = 0, maxv = 0;
    for (auto& l : loads) {
      l = rng.uniform(0.1, 10.0);
      sum += l;
      maxv = std::max(maxv, l);
    }
    const auto a = greedy_assign(loads, pes);
    const double opt_lb = std::max(sum / pes, maxv); // LP lower bound
    const double got = max_pe_load(loads, a, pes);
    EXPECT_LE(got, (4.0 / 3.0) * opt_lb + 1e-9);
  }
}

TEST(GreedyAssign, DeterministicOnTies) {
  const std::vector<double> loads(12, 2.0);
  const auto a = greedy_assign(loads, 3);
  const auto b = greedy_assign(loads, 3);
  EXPECT_EQ(a, b);
}

TEST(GreedyAssign, MorePesThanChares) {
  const std::vector<double> loads{3.0, 1.0};
  const auto a = greedy_assign(loads, 8);
  EXPECT_NE(a[0], a[1]);
}

struct DummyChare : Chare {};

TEST(Rebalance, ImprovesSkewedArray) {
  Runtime::Config cfg;
  cfg.num_pes = 4;
  cfg.mem_scale = 1.0 / 4096;
  Runtime rt(cfg);
  ChareArray<DummyChare> arr(rt, 16, nullptr);

  // Skew: round-robin placement, but chare load grows with index, so
  // PE 3 carries far more than PE 0.
  std::vector<double> loads(16);
  for (int i = 0; i < 16; ++i) {
    loads[static_cast<std::size_t>(i)] = (i % 4 == 3) ? 10.0 : 1.0;
  }
  const auto r = rebalance(arr, loads, 4);
  EXPECT_GT(r.migrations, 0);
  EXPECT_LT(r.max_after, r.max_before);
  EXPECT_LE(r.imbalance_after(), r.imbalance_before());
  // After rebalancing, the four heavy chares sit on distinct PEs.
  std::vector<int> heavy_pes;
  for (int i = 3; i < 16; i += 4) heavy_pes.push_back(arr[i].pe);
  std::sort(heavy_pes.begin(), heavy_pes.end());
  EXPECT_EQ(std::unique(heavy_pes.begin(), heavy_pes.end()),
            heavy_pes.end());
}

TEST(Rebalance, MessagesFollowTheNewMap) {
  Runtime::Config cfg;
  cfg.num_pes = 2;
  cfg.mem_scale = 1.0 / 4096;
  Runtime rt(cfg);
  ChareArray<DummyChare> arr(rt, 2, nullptr);
  auto entry = arr.register_entry(
      "probe", /*prefetch=*/false, [](DummyChare&) {});

  // Force both chares onto PE 1 via rebalance, then send: the runtime
  // must still execute both (delivery follows Chare::pe).
  std::vector<double> loads{1.0, 1.0};
  (void)rebalance(arr, loads, 2);
  arr.broadcast(entry);
  rt.wait_idle();
  SUCCEED();
}

TEST(Rebalance, SizeMismatchDies) {
  Runtime::Config cfg;
  cfg.num_pes = 2;
  cfg.mem_scale = 1.0 / 4096;
  Runtime rt(cfg);
  ChareArray<DummyChare> arr(rt, 4, nullptr);
  std::vector<double> wrong(3, 1.0);
  EXPECT_DEATH((void)rebalance(arr, wrong, 2), "loads.size");
}

} // namespace
} // namespace hmr::rt
