// Tests of the hardware model and its calibration against the numbers
// the paper reports (Fig 1 bandwidth gap, Fig 2 3x stencil gap,
// Fig 7 migration asymmetry).

#include <gtest/gtest.h>

#include "hw/machine_model.hpp"
#include "util/units.hpp"

namespace hmr::hw {
namespace {

TEST(MachineModel, KnlPresetShape) {
  const auto m = knl_flat_all_to_all();
  ASSERT_EQ(m.tiers.size(), 2u);
  EXPECT_EQ(m.tier(m.slow).name, "DDR4");
  EXPECT_EQ(m.tier(m.fast).name, "MCDRAM");
  EXPECT_EQ(m.tier(m.fast).capacity, 16 * GiB);
  EXPECT_EQ(m.tier(m.slow).capacity, 96 * GiB);
  EXPECT_EQ(m.num_pes, 64);
  // Paper §I: DDR4 has about 4X lower bandwidth than MCDRAM.
  EXPECT_GT(m.tier(m.fast).read_bw / m.tier(m.slow).read_bw, 4.0);
  EXPECT_LT(m.tier(m.fast).read_bw / m.tier(m.slow).read_bw, 6.5);
}

TEST(MachineModel, StreamBandwidthGapMatchesFig1) {
  const auto m = knl_flat_all_to_all();
  // Triad: 2 reads + 1 write per element.
  const double hbm = m.stream_bw(m.fast, 2, 1);
  const double ddr = m.stream_bw(m.slow, 2, 1);
  EXPECT_GT(hbm / ddr, 4.0);
  // Absolute anchors within the ballpark the paper measured.
  EXPECT_NEAR(hbm / GB, 440, 60);
  EXPECT_NEAR(ddr / GB, 83, 15);
}

TEST(MachineModel, ComputeTimeRatioMatchesFig2) {
  const auto m = knl_flat_all_to_all();
  // A bandwidth-bound kernel streaming the same bytes from HBM vs DDR4
  // with all 64 PEs active: the paper's Fig 2 observes ~3x.
  const std::uint64_t bytes = 256 * MiB;
  const double t_fast = m.compute_time2(bytes, 0, m.num_pes);
  const double t_slow = m.compute_time2(0, bytes, m.num_pes);
  EXPECT_NEAR(t_slow / t_fast, 3.0, 0.5);
}

TEST(MachineModel, ComputeTimeAdditiveOverTiers) {
  const auto m = knl_flat_all_to_all();
  const double both = m.compute_time2(64 * MiB, 64 * MiB, 64);
  const double fast_only = m.compute_time2(64 * MiB, 0, 64);
  const double slow_only = m.compute_time2(0, 64 * MiB, 64);
  EXPECT_NEAR(both, fast_only + slow_only - m.task_overhead, 1e-9);
}

TEST(MachineModel, ComputeTimeScalesWithSharing) {
  const auto m = knl_flat_all_to_all();
  // Memory term scales with the number of PEs sharing the pipe; the
  // compute floor does not, so 2x PEs -> less than 2x the time.
  const double t64 = m.compute_time2(64 * MiB, 0, 64);
  const double t32 = m.compute_time2(64 * MiB, 0, 32);
  EXPECT_GT(t64, t32);
  EXPECT_LT(t64, 2.0 * t32);
}

TEST(MachineModel, MigrationAsymmetryMatchesFig7) {
  const auto m = knl_flat_all_to_all();
  // Fig 7: HBM->DDR migration costs slightly more than DDR->HBM
  // because DDR4's write bandwidth is the lowest limit.
  const double to_fast = m.migrate_time(1 * GiB, m.slow, m.fast);
  const double to_slow = m.migrate_time(1 * GiB, m.fast, m.slow);
  EXPECT_GT(to_slow, to_fast);
  EXPECT_LT(to_slow / to_fast, 1.6);
}

TEST(MachineModel, MigrationTimeUnderContention) {
  const auto m = knl_flat_all_to_all();
  const std::uint64_t bytes = 1 * GiB;
  const double alone = m.migrate_time(bytes, m.slow, m.fast, 1);
  const double crowd = m.migrate_time(bytes, m.slow, m.fast, 64);
  // 64 concurrent migrations share the channel: each takes longer,
  // but aggregate throughput is higher than one flow.
  EXPECT_GT(crowd, alone);
  EXPECT_LT(crowd, 64.0 * alone);
  // Fig 7 anchor: with 64 threads stressing migration, 16 GB total
  // (split across the threads) moves in roughly half a second.
  const double fig7 = m.migrate_time(16 * GiB / 64, m.slow, m.fast, 64);
  EXPECT_NEAR(fig7, 0.5, 0.25);
}

TEST(MachineModel, CopyRateBelowChannelCapacity) {
  const auto m = knl_flat_all_to_all();
  EXPECT_LT(m.copy_rate(m.slow, m.fast), m.channel_capacity(m.slow, m.fast));
  EXPECT_LT(m.copy_rate(m.fast, m.slow), m.channel_capacity(m.fast, m.slow));
}

TEST(MachineModel, DdrOnlyPresetHasNoFastCapacity) {
  const auto m = knl_ddr_only();
  EXPECT_EQ(m.tier(m.fast).capacity, 0u);
  EXPECT_EQ(m.tier(m.slow).capacity, 96 * GiB);
}

TEST(MachineModel, ThreeTierPreset) {
  const auto m = three_tier_hbm_ddr_nvm();
  ASSERT_EQ(m.tiers.size(), 3u);
  EXPECT_EQ(m.tier(m.slow).name, "NVM");
  // NVM is latency- and bandwidth-restricted relative to DDR4.
  EXPECT_GT(m.tier(0).latency, m.tier(2).latency);
  EXPECT_LT(m.tier(0).read_bw, m.tier(2).read_bw);
}

TEST(MachineModel, BadTierIdDies) {
  const auto m = knl_flat_all_to_all();
  EXPECT_DEATH((void)m.tier(99), "tier id");
}

TEST(MachineModel, SameTierMigrationDies) {
  const auto m = knl_flat_all_to_all();
  EXPECT_DEATH((void)m.copy_rate(0, 0), "within one tier");
}

} // namespace
} // namespace hmr::hw
