// Tests for the MemoryManager: numa-style allocation, block registry,
// migration (alloc + memcpy + free), pooling, and concurrency.

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "mem/memory_manager.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace hmr::mem {
namespace {

MemoryManager make_two_tier(bool pool = false) {
  return MemoryManager({{"DDR4", 8 * MiB}, {"MCDRAM", 2 * MiB}}, pool);
}

TEST(MemoryManager, RawAllocRespectsTierCapacity) {
  auto mm = make_two_tier();
  void* p = mm.alloc_on_tier(1 * MiB, 1);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(mm.alloc_on_tier(2 * MiB, 1), nullptr); // fast tier full
  EXPECT_NE(mm.alloc_on_tier(2 * MiB, 0), nullptr); // slow tier has room
  mm.free_on_tier(p, 1);
  EXPECT_EQ(mm.usage(1).used, 0u);
}

TEST(MemoryManager, FromModelScalesCapacities) {
  const auto model = hw::knl_flat_all_to_all();
  auto mm = MemoryManager::from_model(model, 1.0 / 1024);
  EXPECT_EQ(mm.usage(model.fast).capacity, 16 * MiB);
  EXPECT_EQ(mm.usage(model.slow).capacity, 96 * MiB);
}

TEST(MemoryManager, RegisterAndQueryBlock) {
  auto mm = make_two_tier();
  const BlockId b = mm.register_block(256 * KiB, 0);
  ASSERT_NE(b, kInvalidBlock);
  EXPECT_EQ(mm.block_bytes(b), 256 * KiB);
  EXPECT_EQ(mm.block_tier(b), 0u);
  EXPECT_NE(mm.block_ptr(b), nullptr);
  mm.unregister_block(b);
}

TEST(MemoryManager, RegisterFailsWhenTierFull) {
  auto mm = make_two_tier();
  EXPECT_EQ(mm.register_block(4 * MiB, 1), kInvalidBlock);
}

TEST(MemoryManager, MigratePreservesContents) {
  auto mm = make_two_tier();
  const BlockId b = mm.register_block(128 * KiB, 0);
  auto* p = static_cast<unsigned char*>(mm.block_ptr(b));
  Xoshiro256 rng(3);
  std::vector<unsigned char> pattern(128 * KiB);
  for (auto& c : pattern) c = static_cast<unsigned char>(rng());
  std::memcpy(p, pattern.data(), pattern.size());

  const auto r = mm.migrate(b, 1);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(mm.block_tier(b), 1u);
  auto* q = static_cast<unsigned char*>(mm.block_ptr(b));
  EXPECT_NE(q, p);
  EXPECT_EQ(std::memcmp(q, pattern.data(), pattern.size()), 0);

  // Round trip back.
  ASSERT_TRUE(mm.migrate(b, 0).ok);
  EXPECT_EQ(std::memcmp(mm.block_ptr(b), pattern.data(), pattern.size()), 0);
}

TEST(MemoryManager, MigrateMovesCapacityAccounting) {
  auto mm = make_two_tier();
  const BlockId b = mm.register_block(512 * KiB, 0);
  EXPECT_EQ(mm.usage(0).used, 512 * KiB);
  EXPECT_EQ(mm.usage(1).used, 0u);
  ASSERT_TRUE(mm.migrate(b, 1).ok);
  EXPECT_EQ(mm.usage(0).used, 0u);
  EXPECT_EQ(mm.usage(1).used, 512 * KiB);
}

TEST(MemoryManager, MigrateToFullTierFailsCleanly) {
  auto mm = make_two_tier();
  const BlockId filler = mm.register_block(2 * MiB, 1);
  ASSERT_NE(filler, kInvalidBlock);
  const BlockId b = mm.register_block(512 * KiB, 0);
  const auto r = mm.migrate(b, 1);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(mm.block_tier(b), 0u); // untouched
  EXPECT_EQ(mm.usage(0).used, 512 * KiB);
}

TEST(MemoryManager, MigrateToSameTierIsNoop) {
  auto mm = make_two_tier();
  const BlockId b = mm.register_block(64 * KiB, 0);
  void* before = mm.block_ptr(b);
  const auto r = mm.migrate(b, 0);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(mm.block_ptr(b), before);
}

TEST(MemoryManager, MigrationStatsTracked) {
  auto mm = make_two_tier();
  const BlockId b = mm.register_block(64 * KiB, 0);
  ASSERT_TRUE(mm.migrate(b, 1).ok);
  ASSERT_TRUE(mm.migrate(b, 0).ok);
  EXPECT_EQ(mm.migration_stats(0, 1).count, 1u);
  EXPECT_EQ(mm.migration_stats(0, 1).bytes, 64 * KiB);
  EXPECT_EQ(mm.migration_stats(1, 0).count, 1u);
}

TEST(MemoryManager, PoolReusesBuffers) {
  auto mm = make_two_tier(/*pool=*/true);
  const BlockId b = mm.register_block(256 * KiB, 0);
  ASSERT_TRUE(mm.migrate(b, 1).ok); // slow buffer parked in pool
  EXPECT_EQ(mm.usage(0).pooled, 256 * KiB);
  const auto r = mm.migrate(b, 0); // should hit the pool
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.pooled);
}

TEST(MemoryManager, PooledBytesOccupyCapacity) {
  auto mm = make_two_tier(/*pool=*/true);
  const BlockId b = mm.register_block(1 * MiB, 1);
  ASSERT_TRUE(mm.migrate(b, 0).ok);
  // The fast-tier buffer is parked, still holding capacity.
  EXPECT_EQ(mm.usage(1).pooled, 1 * MiB);
  EXPECT_EQ(mm.usage(1).used, 1 * MiB);
  mm.trim_pools();
  EXPECT_EQ(mm.usage(1).pooled, 0u);
  EXPECT_EQ(mm.usage(1).used, 0u);
}

TEST(MemoryManager, ConcurrentMigrationsOfDistinctBlocks) {
  MemoryManager mm({{"DDR4", 32 * MiB}, {"MCDRAM", 32 * MiB}}, false);
  constexpr int kBlocks = 16;
  std::vector<BlockId> ids;
  for (int i = 0; i < kBlocks; ++i) {
    const BlockId b = mm.register_block(256 * KiB, 0);
    ASSERT_NE(b, kInvalidBlock);
    auto* p = static_cast<unsigned char*>(mm.block_ptr(b));
    std::memset(p, i + 1, 256 * KiB);
    ids.push_back(b);
  }
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = t; i < kBlocks; i += 4) {
        const BlockId b = ids[static_cast<std::size_t>(i)];
        for (int round = 0; round < 8; ++round) {
          ASSERT_TRUE(mm.migrate(b, 1).ok);
          ASSERT_TRUE(mm.migrate(b, 0).ok);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int i = 0; i < kBlocks; ++i) {
    auto* p = static_cast<unsigned char*>(
        mm.block_ptr(ids[static_cast<std::size_t>(i)]));
    for (std::size_t j = 0; j < 256 * KiB; j += 4096) {
      ASSERT_EQ(p[j], i + 1);
    }
  }
}

// ------------------------------------------------ zero-copy admission

TEST(MemoryManagerZeroCopy, RoundTripMigrationBecomesSwap) {
  auto mm = make_two_tier();
  mm.set_zero_copy(true);
  const BlockId b = mm.register_block(256 * KiB, 0);
  auto* p = static_cast<unsigned char*>(mm.block_ptr(b));
  std::memset(p, 0x5A, 256 * KiB);

  // First hop copies (no shadow yet) but retains the source buffer.
  const auto up = mm.migrate(b, 1);
  ASSERT_TRUE(up.ok);
  EXPECT_FALSE(up.zero_copy);
  EXPECT_EQ(mm.usage(0).shadow, 256 * KiB);

  // The hop back lands where the shadow lives: pointer swap, no copy.
  const auto down = mm.migrate(b, 0);
  ASSERT_TRUE(down.ok);
  EXPECT_TRUE(down.zero_copy);
  EXPECT_EQ(mm.zero_copy_admissions(), 1u);
  EXPECT_EQ(mm.zero_copy_bytes(), 256 * KiB);

  // Data must be byte-identical through the swap.
  p = static_cast<unsigned char*>(mm.block_ptr(b));
  for (std::size_t i = 0; i < 256 * KiB; i += 997) ASSERT_EQ(p[i], 0x5A);

  // Ping-pong stays zero-copy: the displaced buffer is the new shadow.
  EXPECT_TRUE(mm.migrate(b, 1).zero_copy);
  EXPECT_TRUE(mm.migrate(b, 0).zero_copy);
  EXPECT_EQ(mm.zero_copy_admissions(), 3u);
}

TEST(MemoryManagerZeroCopy, LogicalStatsMatchCopyingRun) {
  // The equivalence contract: migration_stats() counts logical moves,
  // so a zero-copy run reports exactly what the copying run would.
  auto run = [](bool zc) {
    auto mm = make_two_tier();
    mm.set_zero_copy(zc);
    const BlockId b = mm.register_block(128 * KiB, 0);
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(mm.migrate(b, 1).ok);
      EXPECT_TRUE(mm.migrate(b, 0).ok);
    }
    return std::pair{mm.migration_stats(0, 1), mm.migration_stats(1, 0)};
  };
  const auto off = run(false);
  const auto on = run(true);
  EXPECT_EQ(off.first.count, on.first.count);
  EXPECT_EQ(off.first.bytes, on.first.bytes);
  EXPECT_EQ(off.second.count, on.second.count);
  EXPECT_EQ(off.second.bytes, on.second.bytes);
}

TEST(MemoryManagerZeroCopy, MarkDirtyInvalidatesShadow) {
  auto mm = make_two_tier();
  mm.set_zero_copy(true);
  const BlockId b = mm.register_block(64 * KiB, 0);
  std::memset(mm.block_ptr(b), 1, 64 * KiB);
  ASSERT_TRUE(mm.migrate(b, 1).ok);
  ASSERT_EQ(mm.usage(0).shadow, 64 * KiB);

  // A write makes the shadow stale; the next hop must copy.
  std::memset(mm.block_ptr(b), 2, 64 * KiB);
  mm.mark_dirty(b);
  EXPECT_EQ(mm.shadow_invalidations(), 1u);
  EXPECT_EQ(mm.usage(0).shadow, 0u);
  const auto down = mm.migrate(b, 0);
  ASSERT_TRUE(down.ok);
  EXPECT_FALSE(down.zero_copy);
  EXPECT_EQ(static_cast<unsigned char*>(mm.block_ptr(b))[0], 2);
}

TEST(MemoryManagerZeroCopy, MarkDirtyWithoutShadowIsANoop) {
  auto mm = make_two_tier();
  mm.set_zero_copy(true);
  const BlockId b = mm.register_block(64 * KiB, 0);
  mm.mark_dirty(b);
  EXPECT_EQ(mm.shadow_invalidations(), 0u);
}

TEST(MemoryManagerZeroCopy, ShadowsAreReclaimedUnderPressure) {
  // Fast tier: 2 MiB.  Park a 1 MiB shadow there, then demand more
  // fast memory than remains free — the shadow must be sacrificed
  // rather than failing the allocation.
  auto mm = make_two_tier();
  mm.set_zero_copy(true);
  const BlockId a = mm.register_block(1 * MiB, 1);
  ASSERT_TRUE(mm.migrate(a, 0).ok); // leaves a 1 MiB shadow on fast
  ASSERT_EQ(mm.usage(1).shadow, 1 * MiB);

  const BlockId b = mm.register_block(1536 * KiB, 1);
  ASSERT_NE(b, kInvalidBlock);
  EXPECT_EQ(mm.usage(1).shadow, 0u); // reclaimed to make room
  EXPECT_GE(mm.shadow_invalidations(), 1u);
  mm.unregister_block(b);
  mm.unregister_block(a);
}

TEST(MemoryManagerZeroCopy, UnregisterFreesShadowCapacity) {
  auto mm = make_two_tier();
  mm.set_zero_copy(true);
  const BlockId b = mm.register_block(512 * KiB, 0);
  ASSERT_TRUE(mm.migrate(b, 1).ok);
  EXPECT_EQ(mm.usage(0).shadow, 512 * KiB);
  mm.unregister_block(b);
  EXPECT_EQ(mm.usage(0).shadow, 0u);
  EXPECT_EQ(mm.usage(0).used, 0u);
  EXPECT_EQ(mm.usage(1).used, 0u);
}

TEST(MemoryManagerZeroCopy, DisabledManagerNeverRetains) {
  auto mm = make_two_tier();
  const BlockId b = mm.register_block(128 * KiB, 0);
  ASSERT_TRUE(mm.migrate(b, 1).ok);
  ASSERT_TRUE(mm.migrate(b, 0).ok);
  EXPECT_EQ(mm.zero_copy_admissions(), 0u);
  EXPECT_EQ(mm.usage(0).shadow, 0u);
  EXPECT_EQ(mm.usage(1).shadow, 0u);
}

TEST(MemoryManager, DeadBlockAccessDies) {
  auto mm = make_two_tier();
  const BlockId b = mm.register_block(64 * KiB, 0);
  mm.unregister_block(b);
  EXPECT_DEATH((void)mm.block_ptr(b), "dead block");
  EXPECT_DEATH((void)mm.migrate(b, 1), "dead block");
}

TEST(MemoryManager, BadTierDies) {
  auto mm = make_two_tier();
  EXPECT_DEATH((void)mm.alloc_on_tier(64, 7), "bad tier");
}

} // namespace
} // namespace hmr::mem
