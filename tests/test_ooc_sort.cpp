// Tests for the out-of-core external merge sort (dynamic task graph).

#include <gtest/gtest.h>

#include <algorithm>

#include "apps/ooc_sort.hpp"
#include "rt/runtime.hpp"
#include "util/units.hpp"

namespace hmr::apps {
namespace {

rt::Runtime::Config cfg(ooc::Strategy s, int pes = 2) {
  rt::Runtime::Config c;
  c.strategy = s;
  c.num_pes = pes;
  c.mem_scale = 1.0 / 8192; // 2 MiB fast tier
  return c;
}

class SortStrategies : public ::testing::TestWithParam<ooc::Strategy> {};

TEST_P(SortStrategies, SortsCorrectly) {
  SortParams p;
  p.num_blocks = 16;
  p.elems_per_block = 2048; // 16 KiB blocks, 256 KiB total
  p.fanin = 4;
  rt::Runtime rt(cfg(GetParam(), /*pes=*/4));
  OocSort sorter(rt, p);
  sorter.run();
  EXPECT_TRUE(sorter.verify());
  // 16 blocks, 4-way: 16 -> 4 -> 1 = 2 passes.
  EXPECT_EQ(sorter.passes_executed(), 2);
}

INSTANTIATE_TEST_SUITE_P(
    All, SortStrategies,
    ::testing::Values(ooc::Strategy::Naive, ooc::Strategy::SingleIo,
                      ooc::Strategy::SyncNoIo, ooc::Strategy::MultiIo),
    [](const auto& pi) { return ooc::strategy_name(pi.param); });

TEST(OocSort, NonPowerOfFaninBlockCount) {
  SortParams p;
  p.num_blocks = 13; // groups of 4,4,4,1
  p.elems_per_block = 512;
  p.fanin = 4;
  rt::Runtime rt(cfg(ooc::Strategy::MultiIo));
  OocSort sorter(rt, p);
  sorter.run();
  EXPECT_TRUE(sorter.verify());
}

TEST(OocSort, BinaryMerge) {
  SortParams p;
  p.num_blocks = 8;
  p.elems_per_block = 256;
  p.fanin = 2;
  rt::Runtime rt(cfg(ooc::Strategy::MultiIo));
  OocSort sorter(rt, p);
  sorter.run();
  EXPECT_TRUE(sorter.verify());
  EXPECT_EQ(sorter.passes_executed(), 3); // 8 -> 4 -> 2 -> 1
}

TEST(OocSort, SingleBlockIsTrivial) {
  SortParams p;
  p.num_blocks = 1;
  p.elems_per_block = 1024;
  rt::Runtime rt(cfg(ooc::Strategy::MultiIo));
  OocSort sorter(rt, p);
  sorter.run();
  EXPECT_TRUE(sorter.verify());
  EXPECT_EQ(sorter.passes_executed(), 0);
}

TEST(OocSort, WorkingSetOverflowsFastTier) {
  // 32 blocks x 128 KiB = 4 MiB input + outputs vs a 2 MiB fast tier:
  // the merge window (fanin+1 blocks = 640 KiB) is what must fit.
  SortParams p;
  p.num_blocks = 32;
  p.elems_per_block = 16 * 1024;
  p.fanin = 4;
  rt::Runtime rt(cfg(ooc::Strategy::MultiIo, /*pes=*/4));
  OocSort sorter(rt, p);
  sorter.run();
  EXPECT_TRUE(sorter.verify());
  const auto st = rt.policy_stats();
  EXPECT_GT(st.fetch_bytes, 8u * MiB); // data streamed multiple times
}

TEST(OocSort, FreesConsumedGenerations) {
  SortParams p;
  p.num_blocks = 16;
  p.elems_per_block = 1024;
  p.fanin = 4;
  rt::Runtime rt(cfg(ooc::Strategy::MultiIo));
  const auto slow = rt.config().model.slow;
  const auto before = rt.memory().usage(slow).used;
  OocSort sorter(rt, p);
  sorter.run();
  // Only one generation (16 blocks) should remain allocated.
  const auto after = rt.memory().usage(slow).used;
  EXPECT_EQ(after - before, 16u * 1024 * sizeof(double));
}

} // namespace
} // namespace hmr::apps
