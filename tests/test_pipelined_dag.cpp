// Tests for dependency-DAG task delivery: the pipelined stencil
// workload and the executor's completion-triggered injection.

#include <gtest/gtest.h>

#include <set>

#include "sim/pipelined_stencil_workload.hpp"
#include "sim/sim_executor.hpp"
#include "sim/stencil_workload.hpp"
#include "util/units.hpp"

namespace hmr::sim {
namespace {

PipelinedStencilWorkload::Params small_params() {
  PipelinedStencilWorkload::Params p;
  p.total_bytes = 64 * MiB;
  p.cx = p.cy = p.cz = 2;
  p.num_pes = 4;
  p.iterations = 3;
  return p;
}

TEST(PipelinedStencil, DependencyStructure) {
  PipelinedStencilWorkload w(small_params());
  const auto tasks = w.iteration_tasks(0);
  ASSERT_EQ(tasks.size(), 8u * 3); // 8 chares x 3 iterations
  std::set<ooc::TaskId> ids;
  for (const auto& t : tasks) EXPECT_TRUE(ids.insert(t.id).second);

  // Iteration 0 tasks are roots.
  for (int c = 0; c < 8; ++c) {
    EXPECT_TRUE(tasks[static_cast<std::size_t>(c)].predecessors.empty());
  }
  // In a 2x2x2 grid every chare is a corner: 3 neighbours + itself.
  for (std::size_t i = 8; i < tasks.size(); ++i) {
    EXPECT_EQ(tasks[i].predecessors.size(), 4u);
    // All predecessors are from the previous iteration.
    for (const auto p : tasks[i].predecessors) {
      EXPECT_LT(p, tasks[i].id);
      EXPECT_GE(tasks[i].id - p, 1u);
      EXPECT_LE(tasks[i].id - p, 16u);
    }
  }
}

TEST(PipelinedStencil, InteriorChareHasSevenPredecessors) {
  PipelinedStencilWorkload::Params p;
  p.total_bytes = 64 * MiB;
  p.cx = p.cy = p.cz = 3;
  p.num_pes = 4;
  p.iterations = 2;
  PipelinedStencilWorkload w(p);
  const auto tasks = w.iteration_tasks(0);
  // Chare 13 = (1,1,1) is interior: itself + 6 neighbours.
  const auto id = w.task_id(1, 13);
  for (const auto& t : tasks) {
    if (t.id == id) {
      EXPECT_EQ(t.predecessors.size(), 7u);
      return;
    }
  }
  FAIL() << "task not found";
}

class DagStrategies : public ::testing::TestWithParam<ooc::Strategy> {};

TEST_P(DagStrategies, RunsToCompletion) {
  PipelinedStencilWorkload w(small_params());
  SimConfig cfg;
  cfg.model = hw::knl_flat_all_to_all();
  cfg.model.num_pes = 4;
  cfg.strategy = GetParam();
  cfg.fast_capacity = 32 * MiB;
  SimExecutor ex(cfg);
  const auto r = ex.run(w);
  EXPECT_EQ(r.tasks_completed, 24u);
  EXPECT_GT(r.total_time, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    All, DagStrategies,
    ::testing::Values(ooc::Strategy::Naive, ooc::Strategy::SingleIo,
                      ooc::Strategy::SyncNoIo, ooc::Strategy::MultiIo),
    [](const auto& pi) { return ooc::strategy_name(pi.param); });

TEST(DagExecution, Deterministic) {
  PipelinedStencilWorkload w(small_params());
  auto run = [&] {
    SimConfig cfg;
    cfg.model = hw::knl_flat_all_to_all();
    cfg.model.num_pes = 4;
    cfg.strategy = ooc::Strategy::MultiIo;
    cfg.fast_capacity = 32 * MiB;
    return SimExecutor(cfg).run(w).total_time;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(DagExecution, NeverSlowerThanBarriered) {
  // Same decomposition and per-task cost; the DAG can only relax the
  // ordering constraints the barrier imposes.
  const auto model = hw::knl_flat_all_to_all();
  StencilWorkload barriered({.total_bytes = 2 * GiB,
                             .num_chares = 128,
                             .num_pes = model.num_pes,
                             .iterations = 4});
  PipelinedStencilWorkload pipelined({.total_bytes = 2 * GiB,
                                      .cx = 8,
                                      .cy = 4,
                                      .cz = 4,
                                      .num_pes = model.num_pes,
                                      .iterations = 4});
  auto run = [&](const Workload& w) {
    SimConfig cfg;
    cfg.model = model;
    cfg.strategy = ooc::Strategy::MultiIo;
    cfg.fast_capacity = 1 * GiB;
    return SimExecutor(cfg).run(w).total_time;
  };
  EXPECT_LE(run(pipelined), run(barriered) * 1.001);
}

// A tiny workload with a dependency cycle: the executor must refuse.
class CyclicWorkload final : public Workload {
public:
  CyclicWorkload() { blocks_.push_back({0, 1024}); }
  std::string name() const override { return "cyclic"; }
  int iterations() const override { return 1; }
  const std::vector<BlockSpec>& blocks() const override { return blocks_; }
  std::vector<ooc::TaskDesc> iteration_tasks(int) const override {
    ooc::TaskDesc a, b;
    a.id = 1;
    a.deps = {{0, ooc::AccessMode::ReadOnly}};
    a.predecessors = {2};
    b.id = 2;
    b.deps = {{0, ooc::AccessMode::ReadOnly}};
    b.predecessors = {1};
    return {a, b};
  }

private:
  std::vector<BlockSpec> blocks_;
};

TEST(DagExecution, CycleDies) {
  SimConfig cfg;
  cfg.model = hw::knl_flat_all_to_all();
  cfg.model.num_pes = 2;
  cfg.strategy = ooc::Strategy::MultiIo;
  cfg.fast_capacity = 1 * MiB;
  SimExecutor ex(cfg);
  CyclicWorkload w;
  EXPECT_DEATH((void)ex.run(w), "cycle");
}

// Unknown predecessor: also refused.
class DanglingWorkload final : public Workload {
public:
  DanglingWorkload() { blocks_.push_back({0, 1024}); }
  std::string name() const override { return "dangling"; }
  int iterations() const override { return 1; }
  const std::vector<BlockSpec>& blocks() const override { return blocks_; }
  std::vector<ooc::TaskDesc> iteration_tasks(int) const override {
    ooc::TaskDesc a;
    a.id = 1;
    a.deps = {{0, ooc::AccessMode::ReadOnly}};
    a.predecessors = {99};
    return {a};
  }

private:
  std::vector<BlockSpec> blocks_;
};

TEST(DagExecution, UnknownPredecessorDies) {
  SimConfig cfg;
  cfg.model = hw::knl_flat_all_to_all();
  cfg.model.num_pes = 2;
  cfg.strategy = ooc::Strategy::MultiIo;
  cfg.fast_capacity = 1 * MiB;
  SimExecutor ex(cfg);
  DanglingWorkload w;
  EXPECT_DEATH((void)ex.run(w), "unknown predecessor");
}

} // namespace
} // namespace hmr::sim
