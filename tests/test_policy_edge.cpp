// Edge-case and interleaving tests for the PolicyEngine, beyond the
// main protocol suite: evict/fetch races, accounting identities,
// removal interactions with the lazy LRU, and stats invariants.

#include <gtest/gtest.h>

#include "instant_executor.hpp"
#include "ooc/policy_engine.hpp"

namespace hmr::ooc {
namespace {

using hmr::testing::InstantExecutor;

PolicyEngine::Config cfg(Strategy s, std::uint64_t cap, int pes = 2) {
  PolicyEngine::Config c;
  c.strategy = s;
  c.num_pes = pes;
  c.fast_capacity = cap;
  return c;
}

TaskDesc make_task(TaskId id, std::int32_t pe, std::vector<Dep> deps) {
  TaskDesc t;
  t.id = id;
  t.pe = pe;
  t.deps = std::move(deps);
  return t;
}

TEST(PolicyEdge, EvictInFlightBlocksReAdmission) {
  // A task needing a block that is mid-eviction must wait for the
  // eviction to land, then re-fetch — never read the evicting copy.
  PolicyEngine e(cfg(Strategy::MultiIo, 100));
  e.add_block(0, 50);
  // Task 1: full cycle but hold the eviction open.
  auto c1 = e.on_task_arrived(make_task(1, 0, {{0, AccessMode::ReadWrite}}));
  ASSERT_EQ(c1.size(), 1u);
  auto c2 = e.on_fetch_complete(0);
  auto c3 = e.on_task_complete(1); // emits the evict
  ASSERT_EQ(c3.size(), 1u);
  ASSERT_EQ(c3[0].kind, Command::Kind::Evict);
  EXPECT_EQ(e.block_state(0), BlockState::EvictInFlight);

  // Task 2 arrives while the eviction is in flight: must queue.
  auto c4 = e.on_task_arrived(make_task(2, 0, {{0, AccessMode::ReadWrite}}));
  EXPECT_TRUE(c4.empty());
  EXPECT_EQ(e.total_waiting(), 1u);

  // Eviction lands -> task 2 is admitted with a fresh fetch.
  auto c5 = e.on_evict_complete(0);
  ASSERT_EQ(c5.size(), 1u);
  EXPECT_EQ(c5[0].kind, Command::Kind::Fetch);
  EXPECT_EQ(c5[0].block, 0u);
}

TEST(PolicyEdge, FetchEvictByteAccountingBalances) {
  // At quiescence under eager eviction, everything fetched has been
  // evicted: fetch_bytes == evict_bytes and fast_used == 0.
  PolicyEngine e(cfg(Strategy::MultiIo, 200, /*pes=*/4));
  for (BlockId b = 0; b < 6; ++b) e.add_block(b, 30 + b);
  InstantExecutor x(e);
  for (TaskId t = 1; t <= 12; ++t) {
    const BlockId b = (t * 5) % 6;
    x.arrive(make_task(t, static_cast<std::int32_t>(t % 4),
                       {{b, AccessMode::ReadWrite}}));
  }
  EXPECT_TRUE(e.quiescent());
  const auto& s = e.stats();
  EXPECT_EQ(s.fetch_bytes, s.evict_bytes);
  EXPECT_EQ(s.fetches, s.evicts);
  EXPECT_EQ(e.fast_used(), 0u);
}

TEST(PolicyEdge, NonPrefetchTasksBypassUnderMovingStrategy) {
  PolicyEngine e(cfg(Strategy::MultiIo, 100));
  e.add_block(0, 50);
  TaskDesc t = make_task(1, 0, {{0, AccessMode::ReadWrite}});
  t.prefetch = false;
  auto cmds = e.on_task_arrived(t);
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_EQ(cmds[0].kind, Command::Kind::Run);
  // No claims were taken; the block never moved.
  EXPECT_EQ(e.block_state(0), BlockState::InSlow);
  EXPECT_EQ(e.refcount(0), 0u);
  auto done = e.on_task_complete(1);
  EXPECT_TRUE(done.empty());
  EXPECT_TRUE(e.quiescent());
}

TEST(PolicyEdge, HbmOnlyWithPrefetchTasksNeverMoves) {
  PolicyEngine e(cfg(Strategy::HbmOnly, 1000));
  e.add_block(0, 100);
  e.add_block(1, 100);
  InstantExecutor x(e);
  x.arrive(make_task(1, 0, {{0, AccessMode::ReadOnly},
                            {1, AccessMode::ReadWrite}}));
  EXPECT_EQ(x.fetches.size(), 0u);
  EXPECT_EQ(x.evicts.size(), 0u);
  EXPECT_EQ(x.run_order.size(), 1u);
  EXPECT_EQ(e.stats().fetch_bytes, 0u);
}

TEST(PolicyEdge, LazyRemoveBlockFromLru) {
  auto c = cfg(Strategy::MultiIo, 100);
  c.eager_evict = false;
  PolicyEngine e(c);
  e.add_block(0, 40);
  InstantExecutor x(e);
  x.arrive(make_task(1, 0, {{0, AccessMode::ReadWrite}}));
  EXPECT_EQ(e.lru_size(), 1u);
  EXPECT_EQ(e.block_state(0), BlockState::InFast);
  // Removing a parked warm block releases its budget and LRU slot.
  e.remove_block(0);
  EXPECT_EQ(e.lru_size(), 0u);
  EXPECT_EQ(e.fast_used(), 0u);
}

TEST(PolicyEdge, SingleIoAgentIsAlwaysZero) {
  PolicyEngine e(cfg(Strategy::SingleIo, 10000, /*pes=*/16));
  for (BlockId b = 0; b < 16; ++b) e.add_block(b, 100);
  InstantExecutor x(e);
  for (TaskId t = 0; t < 16; ++t) {
    x.arrive(make_task(t + 1, static_cast<std::int32_t>(t),
                       {{t, AccessMode::ReadWrite}}));
  }
  ASSERT_GE(x.fetches.size(), 16u);
  for (const auto& f : x.fetches) EXPECT_EQ(f.agent, 0);
  for (const auto& ev : x.evicts) EXPECT_EQ(ev.agent, 0);
}

TEST(PolicyEdge, SharedBlockLastUserEvicts) {
  // Three tasks share a block; only the third completion evicts it.
  PolicyEngine e(cfg(Strategy::MultiIo, 100));
  e.add_block(0, 50);
  InstantExecutor x(e, /*auto_run=*/false);
  for (TaskId t = 1; t <= 3; ++t) {
    x.arrive(make_task(t, 0, {{0, AccessMode::ReadOnly}}));
  }
  EXPECT_EQ(e.refcount(0), 3u);
  x.complete(1);
  x.complete(2);
  EXPECT_EQ(x.evicts.size(), 0u);
  EXPECT_EQ(e.block_state(0), BlockState::InFast);
  x.complete(3);
  EXPECT_EQ(x.evicts.size(), 1u);
  EXPECT_EQ(e.block_state(0), BlockState::InSlow);
}

TEST(PolicyEdge, ZeroDependenceTaskRunsImmediately) {
  PolicyEngine e(cfg(Strategy::MultiIo, 100));
  auto cmds = e.on_task_arrived(make_task(1, 0, {}));
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_EQ(cmds[0].kind, Command::Kind::Run);
  auto done = e.on_task_complete(1);
  EXPECT_TRUE(done.empty());
}

TEST(PolicyEdge, ExactCapacityFit) {
  // A task whose footprint equals the capacity exactly is admissible.
  PolicyEngine e(cfg(Strategy::MultiIo, 100));
  e.add_block(0, 60);
  e.add_block(1, 40);
  InstantExecutor x(e);
  x.arrive(make_task(1, 0, {{0, AccessMode::ReadWrite},
                            {1, AccessMode::ReadOnly}}));
  EXPECT_EQ(x.run_order.size(), 1u);
  EXPECT_TRUE(e.quiescent());
}

TEST(PolicyEdge, DedupCountsOncePerExtraWaiter) {
  PolicyEngine e(cfg(Strategy::MultiIo, 1000, /*pes=*/4));
  e.add_block(0, 10);
  // Five tasks arrive before the fetch completes.
  std::vector<Command> all;
  for (TaskId t = 1; t <= 5; ++t) {
    auto c = e.on_task_arrived(make_task(t, static_cast<std::int32_t>(t % 4),
                                         {{0, AccessMode::ReadOnly}}));
    all.insert(all.end(), c.begin(), c.end());
  }
  std::size_t fetches = 0;
  for (const auto& c : all) fetches += c.kind == Command::Kind::Fetch;
  EXPECT_EQ(fetches, 1u);
  EXPECT_EQ(e.stats().fetch_dedup_hits, 4u);
  // One completion readies all five.
  auto c = e.on_fetch_complete(0);
  std::size_t runs = 0;
  for (const auto& cc : c) runs += cc.kind == Command::Kind::Run;
  EXPECT_EQ(runs, 5u);
}

TEST(PolicyEdge, RemoveClaimedBlockDies) {
  PolicyEngine e(cfg(Strategy::MultiIo, 100));
  e.add_block(0, 50);
  auto c = e.on_task_arrived(make_task(1, 0, {{0, AccessMode::ReadWrite}}));
  auto c2 = e.on_fetch_complete(0);
  // Task 1 is running and holds a claim on the block.
  EXPECT_DEATH(e.remove_block(0), "removing a claimed block");
}

TEST(PolicyEdge, RemoveBlockMidMigrationDies) {
  PolicyEngine e(cfg(Strategy::MultiIo, 100));
  e.add_block(0, 50);
  auto c = e.on_task_arrived(make_task(1, 0, {{0, AccessMode::ReadWrite}}));
  ASSERT_EQ(e.block_state(0), BlockState::FetchInFlight);
  // refcount is nonzero too, so the claim check fires first; what
  // matters is that removal dies rather than corrupting the budget.
  EXPECT_DEATH(e.remove_block(0), "removing a");
  // Same for the evict leg, where the refcount is already zero.
  auto c2 = e.on_fetch_complete(0);
  auto c3 = e.on_task_complete(1);
  ASSERT_EQ(e.block_state(0), BlockState::EvictInFlight);
  EXPECT_DEATH(e.remove_block(0), "removing a block mid-migration");
}

TEST(PolicyEdge, OversizedBlockHbmOnlyDies) {
  PolicyEngine e(cfg(Strategy::HbmOnly, 100));
  EXPECT_DEATH(e.add_block(0, 101),
               "requires the working set to fit");
}

TEST(PolicyEdge, OversizedBlockNaiveOverflowsToSlow) {
  PolicyEngine e(cfg(Strategy::Naive, 100));
  EXPECT_EQ(e.add_block(0, 101), 0u); // tier id 0 = the slow tier
  EXPECT_EQ(e.block_state(0), BlockState::InSlow);
  EXPECT_EQ(e.fast_used(), 0u);
  // A smaller block still packs into the fast tier afterwards.
  EXPECT_EQ(e.add_block(1, 50), 1u);
}

TEST(PolicyEdge, OversizedBlockMovementStrategiesDieOnUse) {
  // Movement strategies place any block on the slow tier, however
  // large; the wedge check fires only when a task actually needs it
  // fetched (its dependences can never fit).
  for (const Strategy s :
       {Strategy::SingleIo, Strategy::SyncNoIo, Strategy::MultiIo}) {
    PolicyEngine e(cfg(s, 100));
    EXPECT_EQ(e.add_block(0, 101), 0u);
    EXPECT_DEATH(
        e.on_task_arrived(make_task(1, 0, {{0, AccessMode::ReadWrite}})),
        "exceed the fast-tier capacity");
  }
}

TEST(PolicyEdge, LazyWarmReuseIncrementsLruReclaims) {
  auto c = cfg(Strategy::MultiIo, 100);
  c.eager_evict = false;
  PolicyEngine e(c);
  e.add_block(0, 50);
  InstantExecutor x(e);
  x.arrive(make_task(1, 0, {{0, AccessMode::ReadWrite}}));
  ASSERT_EQ(e.lru_size(), 1u);
  EXPECT_EQ(e.stats().lru_reclaims, 0u);
  // The parked warm block is reused without a round trip.
  x.arrive(make_task(2, 0, {{0, AccessMode::ReadWrite}}));
  EXPECT_EQ(e.stats().lru_reclaims, 1u);
  EXPECT_EQ(e.stats().fetches, 1u); // no refetch
  EXPECT_EQ(x.run_order.size(), 2u);
}

TEST(PolicyEdge, DedupHitAcrossTwoQueuedTasks) {
  // Two queued tasks share a dependence; the second admission rides
  // the first one's in-flight fetch and must say so in the stats.
  PolicyEngine e(cfg(Strategy::MultiIo, 200, /*pes=*/2));
  e.add_block(0, 50);
  e.add_block(1, 50);
  auto c1 = e.on_task_arrived(make_task(1, 0, {{0, AccessMode::ReadOnly}}));
  auto c2 = e.on_task_arrived(make_task(2, 1, {{0, AccessMode::ReadOnly},
                                               {1, AccessMode::ReadWrite}}));
  std::size_t fetches0 = 0;
  for (const auto& c : c1) fetches0 += c.kind == Command::Kind::Fetch;
  for (const auto& c : c2) {
    fetches0 += c.kind == Command::Kind::Fetch && c.block == 0;
  }
  EXPECT_EQ(fetches0, 1u);
  EXPECT_EQ(e.stats().fetch_dedup_hits, 1u);
  // Completing the shared fetch readies task 1 and unblocks task 2's
  // remaining dependence as usual.
  InstantExecutor x(e);
  x.drive(e.on_fetch_complete(0));
  x.drive(e.on_fetch_complete(1));
  EXPECT_EQ(x.run_order.size(), 2u);
}

} // namespace
} // namespace hmr::ooc
