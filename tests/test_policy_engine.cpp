// Unit tests for the PolicyEngine protocol: placement, admission,
// fetch/evict command generation, refcounts, dedup, budget accounting,
// fairness, and failure detection.

#include <gtest/gtest.h>

#include <algorithm>

#include "instant_executor.hpp"
#include "ooc/policy_engine.hpp"

namespace hmr::ooc {
namespace {

using hmr::testing::InstantExecutor;

PolicyEngine::Config cfg(Strategy s, std::uint64_t cap, int pes = 2) {
  PolicyEngine::Config c;
  c.strategy = s;
  c.num_pes = pes;
  c.fast_capacity = cap;
  return c;
}

TaskDesc make_task(TaskId id, std::int32_t pe,
                   std::vector<Dep> deps, double wf = 1.0) {
  TaskDesc t;
  t.id = id;
  t.pe = pe;
  t.deps = std::move(deps);
  t.work_factor = wf;
  return t;
}

// ---------- static placement strategies ----------

TEST(PolicyStatic, NaivePacksFastThenOverflows) {
  PolicyEngine e(cfg(Strategy::Naive, 100));
  // Classic two-level hierarchy: tier id 1 = fast, 0 = slow.
  EXPECT_EQ(e.add_block(0, 60), 1u);
  EXPECT_EQ(e.add_block(1, 40), 1u);
  EXPECT_EQ(e.add_block(2, 1), 0u); // full
  EXPECT_EQ(e.block_state(0), BlockState::InFast);
  EXPECT_EQ(e.block_state(2), BlockState::InSlow);
  EXPECT_EQ(e.fast_used(), 100u);
}

TEST(PolicyStatic, DdrOnlyPlacesEverythingSlow) {
  PolicyEngine e(cfg(Strategy::DdrOnly, 100));
  EXPECT_EQ(e.add_block(0, 10), 0u);
  EXPECT_EQ(e.block_state(0), BlockState::InSlow);
  EXPECT_EQ(e.fast_used(), 0u);
}

TEST(PolicyStatic, HbmOnlyDiesWhenOverCapacity) {
  PolicyEngine e(cfg(Strategy::HbmOnly, 100));
  EXPECT_EQ(e.add_block(0, 100), 1u);
  EXPECT_DEATH((void)e.add_block(1, 1), "fit in HBM");
}

TEST(PolicyStatic, TasksRunImmediatelyWithoutMovement) {
  PolicyEngine e(cfg(Strategy::Naive, 100));
  e.add_block(0, 60);
  e.add_block(1, 60); // overflows to slow
  auto cmds = e.on_task_arrived(make_task(1, 0, {{0, AccessMode::ReadWrite},
                                                 {1, AccessMode::ReadOnly}}));
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_EQ(cmds[0].kind, Command::Kind::Run);
  EXPECT_EQ(cmds[0].task, 1u);
  auto done = e.on_task_complete(1);
  EXPECT_TRUE(done.empty()); // no eviction under static strategies
  EXPECT_TRUE(e.quiescent());
}

// ---------- movement strategies: basic protocol ----------

class PolicyMove : public ::testing::TestWithParam<Strategy> {};

TEST_P(PolicyMove, FetchRunEvictRoundTrip) {
  PolicyEngine e(cfg(GetParam(), 100));
  EXPECT_EQ(e.add_block(0, 50), 0u); // movement: start on the far tier
  InstantExecutor x(e);
  x.arrive(make_task(1, 0, {{0, AccessMode::ReadWrite}}));
  ASSERT_EQ(x.fetches.size(), 1u);
  EXPECT_EQ(x.fetches[0].block, 0u);
  ASSERT_EQ(x.run_order.size(), 1u);
  EXPECT_EQ(x.run_order[0], 1u);
  ASSERT_EQ(x.evicts.size(), 1u);
  EXPECT_EQ(e.block_state(0), BlockState::InSlow); // evicted back
  EXPECT_EQ(e.fast_used(), 0u);
  EXPECT_TRUE(e.quiescent());
}

TEST_P(PolicyMove, AlreadyResidentSkipsFetch) {
  PolicyEngine e(cfg(GetParam(), 100));
  e.add_block(0, 30);
  e.add_block(1, 30);
  InstantExecutor x(e, /*auto_run=*/false);
  // Task 1 pulls block 0 in and holds it (not completed yet).
  x.arrive(make_task(1, 0, {{0, AccessMode::ReadWrite}}));
  ASSERT_EQ(x.fetches.size(), 1u);
  // Task 2 (same PE) uses block 0 too: no second fetch needed.
  x.arrive(make_task(2, 0, {{0, AccessMode::ReadOnly}}));
  EXPECT_EQ(x.fetches.size(), 1u);
  EXPECT_EQ(x.run_order.size(), 2u);
  EXPECT_EQ(e.refcount(0), 2u);
  x.complete(1);
  EXPECT_EQ(e.block_state(0), BlockState::InFast); // still referenced
  x.complete(2);
  EXPECT_EQ(e.block_state(0), BlockState::InSlow); // last user evicts
  EXPECT_TRUE(e.quiescent());
}

TEST_P(PolicyMove, BudgetBlocksAdmissionUntilEviction) {
  PolicyEngine e(cfg(GetParam(), 100));
  e.add_block(0, 80);
  e.add_block(1, 80);
  InstantExecutor x(e, /*auto_run=*/false);
  x.arrive(make_task(1, 0, {{0, AccessMode::ReadWrite}}));
  EXPECT_EQ(x.run_order.size(), 1u);
  x.arrive(make_task(2, 0, {{1, AccessMode::ReadWrite}}));
  // No room: task 2 must wait.
  EXPECT_EQ(x.run_order.size(), 1u);
  EXPECT_EQ(e.total_waiting(), 1u);
  // Completing task 1 evicts block 0 and unblocks task 2.
  x.complete(1);
  EXPECT_EQ(x.run_order.size(), 2u);
  EXPECT_EQ(x.run_order[1], 2u);
  x.complete(2);
  EXPECT_TRUE(e.quiescent());
  EXPECT_EQ(e.fast_used(), 0u);
}

TEST_P(PolicyMove, SharedFetchIsDeduplicated) {
  PolicyEngine e(cfg(GetParam(), 100, /*pes=*/2));
  e.add_block(0, 40);
  InstantExecutor x(e, /*auto_run=*/false);
  // Two tasks on different PEs need the same block.  The instant
  // executor completes the first fetch immediately, so to observe the
  // dedup we need both arrivals before any fetch completes — use the
  // raw API instead.
  auto c1 = e.on_task_arrived(make_task(1, 0, {{0, AccessMode::ReadOnly}}));
  ASSERT_EQ(c1.size(), 1u);
  EXPECT_EQ(c1[0].kind, Command::Kind::Fetch);
  auto c2 = e.on_task_arrived(make_task(2, 1, {{0, AccessMode::ReadOnly}}));
  // Second task must not trigger a second fetch of the same block.
  for (const auto& c : c2) EXPECT_NE(c.kind, Command::Kind::Fetch);
  EXPECT_EQ(e.stats().fetch_dedup_hits, 1u);
  // One completion readies both tasks.
  auto c3 = e.on_fetch_complete(0);
  std::size_t runs = 0;
  for (const auto& c : c3) runs += c.kind == Command::Kind::Run;
  EXPECT_EQ(runs, 2u);
  EXPECT_EQ(e.refcount(0), 2u);
}

TEST_P(PolicyMove, WorkingSetLargerThanCapacityDies) {
  PolicyEngine e(cfg(GetParam(), 100));
  e.add_block(0, 150);
  EXPECT_DEATH(
      {
        auto cmds =
            e.on_task_arrived(make_task(1, 0, {{0, AccessMode::ReadWrite}}));
        (void)cmds;
      },
      "exceed");
}

TEST_P(PolicyMove, StatsCountTraffic) {
  PolicyEngine e(cfg(GetParam(), 100));
  e.add_block(0, 50);
  InstantExecutor x(e);
  x.arrive(make_task(1, 0, {{0, AccessMode::ReadWrite}}));
  x.arrive(make_task(2, 0, {{0, AccessMode::ReadWrite}}));
  const auto& s = e.stats();
  EXPECT_EQ(s.tasks_run, 2u);
  EXPECT_EQ(s.fetches, 2u); // re-fetched after eager eviction
  EXPECT_EQ(s.fetch_bytes, 100u);
  EXPECT_EQ(s.evicts, 2u);
  EXPECT_EQ(s.evict_bytes, 100u);
}

INSTANTIATE_TEST_SUITE_P(AllMoving, PolicyMove,
                         ::testing::Values(Strategy::SingleIo,
                                           Strategy::SyncNoIo,
                                           Strategy::MultiIo),
                         [](const auto& pi) { return strategy_name(pi.param); });

// ---------- strategy-specific behaviour ----------

TEST(PolicySingleIo, AllFetchesGoToAgentZero) {
  PolicyEngine e(cfg(Strategy::SingleIo, 1000, /*pes=*/4));
  for (BlockId b = 0; b < 4; ++b) e.add_block(b, 10);
  InstantExecutor x(e, /*auto_run=*/false);
  for (TaskId t = 0; t < 4; ++t) {
    x.arrive(make_task(t + 1, static_cast<std::int32_t>(t),
                       {{t, AccessMode::ReadWrite}}));
  }
  ASSERT_EQ(x.fetches.size(), 4u);
  for (const auto& f : x.fetches) EXPECT_EQ(f.agent, 0);
}

TEST(PolicySingleIo, RoundRobinServesQueuesFairly) {
  // Fill the budget with a holder task, queue two tasks per PE, then
  // release.  The freed capacity fits exactly two admissions; the IO
  // thread must take one from EACH queue (the paper's load-balance
  // rationale for per-PE wait queues), not two from the first.
  PolicyEngine e(cfg(Strategy::SingleIo, 20, /*pes=*/2));
  for (BlockId b = 0; b < 4; ++b) e.add_block(b, 10);
  e.add_block(9, 20); // budget holder
  InstantExecutor x(e, /*auto_run=*/false);
  x.arrive(make_task(100, 0, {{9, AccessMode::ReadWrite}}));
  ASSERT_EQ(x.run_order.size(), 1u);
  x.arrive(make_task(1, 0, {{0, AccessMode::ReadWrite}}));
  x.arrive(make_task(2, 0, {{1, AccessMode::ReadWrite}}));
  x.arrive(make_task(3, 1, {{2, AccessMode::ReadWrite}}));
  x.arrive(make_task(4, 1, {{3, AccessMode::ReadWrite}}));
  EXPECT_EQ(e.total_waiting(), 4u);
  x.fetches.clear();
  x.complete(100); // evicts the holder, freeing 20 bytes
  // One admission per queue: blocks 0 (PE0 head) and 2 (PE1 head).
  std::vector<BlockId> fetched;
  for (const auto& f : x.fetches) fetched.push_back(f.block);
  std::sort(fetched.begin(), fetched.end());
  ASSERT_EQ(fetched.size(), 2u);
  EXPECT_EQ(fetched[0], 0u);
  EXPECT_EQ(fetched[1], 2u);
  EXPECT_EQ(e.total_waiting(), 2u);
}

TEST(PolicySyncNoIo, FetchesAreWorkerInline) {
  PolicyEngine e(cfg(Strategy::SyncNoIo, 100));
  e.add_block(0, 50);
  auto cmds = e.on_task_arrived(make_task(1, 0, {{0, AccessMode::ReadWrite}}));
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_EQ(cmds[0].kind, Command::Kind::Fetch);
  EXPECT_EQ(cmds[0].agent, kWorkerInline);
  EXPECT_EQ(cmds[0].pe, 0);
}

TEST(PolicySyncNoIo, EvictionsAreWorkerInline) {
  PolicyEngine e(cfg(Strategy::SyncNoIo, 100));
  e.add_block(0, 50);
  InstantExecutor x(e);
  x.arrive(make_task(1, 0, {{0, AccessMode::ReadWrite}}));
  ASSERT_EQ(x.evicts.size(), 1u);
  EXPECT_EQ(x.evicts[0].agent, kWorkerInline);
}

TEST(PolicyMultiIo, FetchAgentIsHomePe) {
  PolicyEngine e(cfg(Strategy::MultiIo, 100, /*pes=*/4));
  e.add_block(0, 50);
  auto cmds = e.on_task_arrived(make_task(1, 3, {{0, AccessMode::ReadWrite}}));
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_EQ(cmds[0].kind, Command::Kind::Fetch);
  EXPECT_EQ(cmds[0].agent, 3);
}

TEST(PolicyMultiIo, EvictAgentIsHomePeByDefault) {
  PolicyEngine e(cfg(Strategy::MultiIo, 100, /*pes=*/4));
  e.add_block(0, 50);
  InstantExecutor x(e);
  x.arrive(make_task(1, 2, {{0, AccessMode::ReadWrite}}));
  ASSERT_EQ(x.evicts.size(), 1u);
  EXPECT_EQ(x.evicts[0].agent, 2);
}

TEST(PolicyMultiIo, EvictByWorkerOption) {
  auto c = cfg(Strategy::MultiIo, 100, 4);
  c.evict_by_worker = true;
  PolicyEngine e(c);
  e.add_block(0, 50);
  InstantExecutor x(e);
  x.arrive(make_task(1, 2, {{0, AccessMode::ReadWrite}}));
  ASSERT_EQ(x.evicts.size(), 1u);
  EXPECT_EQ(x.evicts[0].agent, kWorkerInline);
}

// ---------- write-only fast path ----------

TEST(PolicyWriteOnly, NocopyFlagPropagates) {
  auto c = cfg(Strategy::MultiIo, 100);
  c.writeonly_nocopy = true;
  PolicyEngine e(c);
  e.add_block(0, 30);
  e.add_block(1, 30);
  auto cmds = e.on_task_arrived(make_task(
      1, 0, {{0, AccessMode::ReadOnly}, {1, AccessMode::WriteOnly}}));
  ASSERT_EQ(cmds.size(), 2u);
  EXPECT_FALSE(cmds[0].nocopy);
  EXPECT_TRUE(cmds[1].nocopy);
}

TEST(PolicyWriteOnly, DefaultAlwaysCopies) {
  PolicyEngine e(cfg(Strategy::MultiIo, 100));
  e.add_block(0, 30);
  auto cmds = e.on_task_arrived(make_task(1, 0, {{0, AccessMode::WriteOnly}}));
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_FALSE(cmds[0].nocopy);
}

// ---------- lazy eviction (LRU extension) ----------

TEST(PolicyLazy, BlocksStayWarmUntilSpaceNeeded) {
  auto c = cfg(Strategy::MultiIo, 100);
  c.eager_evict = false;
  PolicyEngine e(c);
  e.add_block(0, 60);
  e.add_block(1, 60);
  InstantExecutor x(e);
  x.arrive(make_task(1, 0, {{0, AccessMode::ReadWrite}}));
  // No eviction on completion: block 0 parked warm.
  EXPECT_EQ(x.evicts.size(), 0u);
  EXPECT_EQ(e.block_state(0), BlockState::InFast);
  EXPECT_EQ(e.lru_size(), 1u);
  // Task needing block 1 forces reclaim of block 0.
  x.arrive(make_task(2, 0, {{1, AccessMode::ReadWrite}}));
  EXPECT_GE(x.evicts.size(), 1u);
  EXPECT_EQ(x.evicts[0].block, 0u);
  EXPECT_EQ(x.run_order.size(), 2u);
}

TEST(PolicyLazy, WarmReuseSkipsRefetch) {
  auto c = cfg(Strategy::MultiIo, 100);
  c.eager_evict = false;
  PolicyEngine e(c);
  e.add_block(0, 50);
  InstantExecutor x(e);
  x.arrive(make_task(1, 0, {{0, AccessMode::ReadWrite}}));
  EXPECT_EQ(x.fetches.size(), 1u);
  x.arrive(make_task(2, 0, {{0, AccessMode::ReadWrite}}));
  // Second task reuses the warm block: no new fetch, reclaim counted.
  EXPECT_EQ(x.fetches.size(), 1u);
  EXPECT_EQ(e.stats().lru_reclaims, 1u);
  EXPECT_EQ(e.stats().fetches, 1u);
}

// ---------- misuse detection ----------

// ---------- batched event entry point ----------

TEST(PolicyBatch, StepBatchMatchesPerEventCalls) {
  // The same scripted MultiIo event sequence through two engines: one
  // driven by the per-event entry points, one by step_batch.  The
  // concatenated command streams and the final stats must be
  // identical — step_batch is pure lock amortization, not policy.
  auto run_script = [](bool batched) {
    PolicyEngine e(cfg(Strategy::MultiIo, 100, 2));
    for (BlockId b = 0; b < 4; ++b) e.add_block(b, 40);
    std::vector<Command> all;
    auto feed = [&](std::vector<PolicyEngine::Event> evs) {
      if (batched) {
        auto c = e.step_batch(std::move(evs));
        all.insert(all.end(), c.begin(), c.end());
        return;
      }
      for (auto& ev : evs) {
        std::vector<Command> c;
        switch (ev.kind) {
          case PolicyEngine::Event::Kind::TaskArrived:
            c = e.on_task_arrived(ev.task);
            break;
          case PolicyEngine::Event::Kind::FetchComplete:
            c = e.on_fetch_complete(ev.block);
            break;
          case PolicyEngine::Event::Kind::EvictComplete:
            c = e.on_evict_complete(ev.block);
            break;
          case PolicyEngine::Event::Kind::TaskComplete:
            c = e.on_task_complete(ev.task_id);
            break;
        }
        all.insert(all.end(), c.begin(), c.end());
      }
    };
    // Two tasks admitted (one shared dep, dedup), a third over
    // capacity that waits, then completions and evictions that admit
    // it — exercises every Event kind and the retry paths.
    feed({PolicyEngine::Event::arrived(
              make_task(1, 0, {{0, AccessMode::ReadWrite},
                               {1, AccessMode::ReadOnly}})),
          PolicyEngine::Event::arrived(
              make_task(2, 1, {{1, AccessMode::ReadOnly}}))});
    feed({PolicyEngine::Event::fetched(0),
          PolicyEngine::Event::fetched(1),
          PolicyEngine::Event::arrived(
              make_task(3, 0, {{2, AccessMode::ReadWrite},
                               {3, AccessMode::ReadWrite}}))});
    feed({PolicyEngine::Event::completed(1),
          PolicyEngine::Event::completed(2)});
    feed({PolicyEngine::Event::evicted(0),
          PolicyEngine::Event::evicted(1)});
    feed({PolicyEngine::Event::fetched(2),
          PolicyEngine::Event::fetched(3),
          PolicyEngine::Event::completed(3),
          PolicyEngine::Event::evicted(2),
          PolicyEngine::Event::evicted(3)});
    EXPECT_TRUE(e.quiescent());
    return std::make_pair(std::move(all), e.stats());
  };

  const auto [cmds_a, stats_a] = run_script(false);
  const auto [cmds_b, stats_b] = run_script(true);
  ASSERT_EQ(cmds_a.size(), cmds_b.size());
  for (std::size_t i = 0; i < cmds_a.size(); ++i) {
    EXPECT_EQ(cmds_a[i].kind, cmds_b[i].kind) << i;
    EXPECT_EQ(cmds_a[i].block, cmds_b[i].block) << i;
    EXPECT_EQ(cmds_a[i].task, cmds_b[i].task) << i;
    EXPECT_EQ(cmds_a[i].agent, cmds_b[i].agent) << i;
    EXPECT_EQ(cmds_a[i].pe, cmds_b[i].pe) << i;
    EXPECT_EQ(cmds_a[i].nocopy, cmds_b[i].nocopy) << i;
  }
  EXPECT_EQ(stats_a.tasks_run, stats_b.tasks_run);
  EXPECT_EQ(stats_a.fetches, stats_b.fetches);
  EXPECT_EQ(stats_a.fetch_bytes, stats_b.fetch_bytes);
  EXPECT_EQ(stats_a.evicts, stats_b.evicts);
  EXPECT_EQ(stats_a.evict_bytes, stats_b.evict_bytes);
  EXPECT_EQ(stats_a.fetch_dedup_hits, stats_b.fetch_dedup_hits);
}

TEST(PolicyErrors, DuplicateTaskIdDies) {
  PolicyEngine e(cfg(Strategy::MultiIo, 100));
  e.add_block(0, 10);
  InstantExecutor x(e, false);
  x.arrive(make_task(1, 0, {{0, AccessMode::ReadOnly}}));
  EXPECT_DEATH(
      { auto c = e.on_task_arrived(make_task(1, 0, {})); (void)c; },
      "duplicate task");
}

TEST(PolicyErrors, UnknownBlockDies) {
  PolicyEngine e(cfg(Strategy::MultiIo, 100));
  EXPECT_DEATH(
      {
        auto c =
            e.on_task_arrived(make_task(1, 0, {{7, AccessMode::ReadOnly}}));
        (void)c;
      },
      "unregistered block");
}

TEST(PolicyErrors, DuplicateDepDies) {
  PolicyEngine e(cfg(Strategy::MultiIo, 100));
  e.add_block(0, 10);
  EXPECT_DEATH(
      {
        auto c = e.on_task_arrived(make_task(
            1, 0, {{0, AccessMode::ReadOnly}, {0, AccessMode::ReadWrite}}));
        (void)c;
      },
      "duplicate dependence");
}

TEST(PolicyErrors, CompleteBeforeRunDies) {
  PolicyEngine e(cfg(Strategy::MultiIo, 100));
  e.add_block(0, 200); // won't be admitted (wedge is a different path)
  EXPECT_DEATH({ auto c = e.on_task_complete(99); (void)c; },
               "unknown task");
}

TEST(PolicyErrors, StrayFetchCompleteDies) {
  PolicyEngine e(cfg(Strategy::MultiIo, 100));
  e.add_block(0, 10);
  EXPECT_DEATH({ auto c = e.on_fetch_complete(0); (void)c; },
               "not being fetched");
}

TEST(PolicyErrors, RemoveClaimedBlockDies) {
  PolicyEngine e(cfg(Strategy::MultiIo, 100));
  e.add_block(0, 10);
  InstantExecutor x(e, false);
  x.arrive(make_task(1, 0, {{0, AccessMode::ReadOnly}}));
  EXPECT_DEATH(e.remove_block(0), "claimed");
}

TEST(PolicyErrors, RemoveIdleBlockWorks) {
  PolicyEngine e(cfg(Strategy::MultiIo, 100));
  e.add_block(0, 10);
  e.remove_block(0);
  EXPECT_DEATH((void)e.block_state(0), "unknown block");
}

} // namespace
} // namespace hmr::ooc
