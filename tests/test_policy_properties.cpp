// Property-based tests: drive the PolicyEngine with randomized
// synthetic workloads across all strategies and check the protocol
// invariants of the paper's Algorithm 1 at every step:
//   * the fast-tier budget is never exceeded,
//   * refcounts never underflow and blocks are only evicted at 0,
//   * every task runs exactly once, with all deps resident at run time,
//   * the system quiesces (no lost tasks, no leaked in-flight ops),
//   * under eager eviction, quiescence implies an empty fast tier.

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "ooc/policy_engine.hpp"
#include "sim/synthetic_workload.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace hmr::ooc {
namespace {

struct Scenario {
  Strategy strategy;
  bool eager;
  std::uint64_t seed;
  double reuse;
};

std::string scenario_name(const ::testing::TestParamInfo<Scenario>& info) {
  const auto& s = info.param;
  std::string n = strategy_name(s.strategy);
  n += s.eager ? "_eager" : "_lazy";
  n += "_s" + std::to_string(s.seed);
  n += s.reuse > 0.5 ? "_hireuse" : "_loreuse";
  return n;
}

// A randomized executor: it interleaves completion of outstanding
// fetch/evict/run work in random order, which explores many more
// protocol schedules than the deterministic simulator does.
class FuzzExecutor {
public:
  FuzzExecutor(PolicyEngine& e, std::uint64_t seed,
               const std::vector<sim::BlockSpec>& blocks)
      : eng_(&e), rng_(seed) {
    for (const auto& b : blocks) bytes_[b.id] = b.bytes;
  }

  void arrive(const TaskDesc& t) {
    descs_[t.id] = t;
    absorb(eng_->on_task_arrived(t));
  }

  bool step() {
    // Pick a random outstanding obligation and complete it.
    const std::size_t total =
        fetches_.size() + evicts_.size() + running_.size();
    if (total == 0) return false;
    std::size_t pick = rng_.below(total);
    if (pick < fetches_.size()) {
      const BlockId b = take(fetches_, pick);
      absorb(eng_->on_fetch_complete(b));
    } else if (pick < fetches_.size() + evicts_.size()) {
      const BlockId b = take(evicts_, pick - fetches_.size());
      absorb(eng_->on_evict_complete(b));
    } else {
      const TaskId t =
          take(running_, pick - fetches_.size() - evicts_.size());
      // Invariant: under movement strategies, all deps are resident
      // when the task actually runs (static strategies run wherever
      // the data was placed).
      if (strategy_moves_data(eng_->config().strategy)) {
        for (const auto& d : descs_[t].deps) {
          EXPECT_EQ(eng_->block_state(d.block), BlockState::InFast)
              << "task " << t << " ran with non-resident dep " << d.block;
        }
      }
      ++run_count_[t];
      absorb(eng_->on_task_complete(t));
    }
    check_invariants();
    return true;
  }

  void drain() {
    while (step()) {
    }
  }

  void check_invariants() {
    ASSERT_LE(eng_->fast_used(), eng_->fast_capacity());
  }

  const std::map<TaskId, int>& run_count() const { return run_count_; }

private:
  template <typename V>
  typename V::value_type take(V& v, std::size_t i) {
    auto x = v[i];
    v[i] = v.back();
    v.pop_back();
    return x;
  }

  void absorb(std::vector<Command> cmds) {
    for (const auto& c : cmds) {
      switch (c.kind) {
        case Command::Kind::Fetch:
          fetches_.push_back(c.block);
          break;
        case Command::Kind::Evict:
          evicts_.push_back(c.block);
          break;
        case Command::Kind::Run:
          running_.push_back(c.task);
          break;
      }
    }
  }

  PolicyEngine* eng_;
  Xoshiro256 rng_;
  std::unordered_map<BlockId, std::uint64_t> bytes_;
  std::unordered_map<TaskId, TaskDesc> descs_;
  std::vector<BlockId> fetches_;
  std::vector<BlockId> evicts_;
  std::vector<TaskId> running_;
  std::map<TaskId, int> run_count_;
};

class PolicyProperty : public ::testing::TestWithParam<Scenario> {};

TEST_P(PolicyProperty, ProtocolInvariantsHold) {
  const auto& sc = GetParam();

  sim::SyntheticWorkload::Params wp;
  wp.num_blocks = 96;
  wp.block_bytes = 1 * MiB;
  wp.tasks_per_iteration = 80;
  wp.deps_per_task = 3;
  wp.reuse = sc.reuse;
  wp.num_pes = 6;
  wp.num_iterations = 2;
  wp.seed = sc.seed;
  sim::SyntheticWorkload w(wp);

  PolicyEngine::Config cfg;
  cfg.strategy = sc.strategy;
  cfg.num_pes = wp.num_pes;
  // Tight budget: at most ~8 tasks' worth of blocks resident.
  cfg.fast_capacity = 24 * MiB;
  cfg.eager_evict = sc.eager;
  PolicyEngine eng(cfg);

  for (const auto& b : w.blocks()) eng.add_block(b.id, b.bytes);

  FuzzExecutor ex(eng, sc.seed * 7919 + 13, w.blocks());
  std::size_t expected_tasks = 0;
  Xoshiro256 mix(sc.seed + 1);
  for (int iter = 0; iter < w.iterations(); ++iter) {
    for (const auto& t : w.iteration_tasks(iter)) {
      ex.arrive(t);
      ++expected_tasks;
      // Randomly interleave progress with arrivals.
      while (mix.uniform() < 0.5 && ex.step()) {
      }
    }
    ex.drain();
  }

  // Completeness: every task ran exactly once.
  EXPECT_EQ(ex.run_count().size(), expected_tasks);
  for (const auto& [t, n] : ex.run_count()) {
    EXPECT_EQ(n, 1) << "task " << t << " ran " << n << " times";
  }

  // Quiescence: nothing waiting, nothing live, nothing in flight.
  EXPECT_TRUE(eng.quiescent());
  EXPECT_EQ(eng.total_waiting(), 0u);
  EXPECT_EQ(eng.inflight_fetches(), 0u);
  EXPECT_EQ(eng.inflight_evicts(), 0u);

  // Refcounts all returned to zero.
  for (const auto& b : w.blocks()) {
    EXPECT_EQ(eng.refcount(b.id), 0u) << "block " << b.id;
  }

  // Under eager eviction, quiescence implies an empty fast tier; under
  // lazy eviction the warm set must still respect the budget.
  if (sc.eager && strategy_moves_data(sc.strategy)) {
    EXPECT_EQ(eng.fast_used(), 0u);
  } else {
    EXPECT_LE(eng.fast_used(), cfg.fast_capacity);
  }
}

std::vector<Scenario> all_scenarios() {
  std::vector<Scenario> out;
  for (Strategy s : {Strategy::SingleIo, Strategy::SyncNoIo,
                     Strategy::MultiIo}) {
    for (bool eager : {true, false}) {
      for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        for (double reuse : {0.0, 0.8}) {
          out.push_back({s, eager, seed, reuse});
        }
      }
    }
  }
  // Static strategies: only eager flag irrelevant; include a couple to
  // cover the no-movement path under the same harness.
  out.push_back({Strategy::Naive, true, 4, 0.5});
  out.push_back({Strategy::DdrOnly, true, 5, 0.5});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PolicyProperty,
                         ::testing::ValuesIn(all_scenarios()),
                         scenario_name);

} // namespace
} // namespace hmr::ooc
