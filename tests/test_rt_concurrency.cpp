// Concurrency tests for the de-serialized runtime hot path: the
// work-stealing TierBudget, the ShardedEngine's semantic parity with
// the serial PolicyEngine, batched message delivery, and a
// multithreaded stress of the sharded MultiIo configuration.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "ooc/tier_budget.hpp"
#include "ooc/policy_engine.hpp"
#include "rt/io_handle.hpp"
#include "rt/runtime.hpp"
#include "rt/sharded_engine.hpp"

namespace hmr {
namespace {

// ---------------------------------------------------------------- budget

TEST(TierBudget, LocalClaimAndRelease) {
  ooc::TierBudget b(/*capacity=*/1000, /*num_shards=*/4);
  EXPECT_EQ(b.capacity(), 1000u);
  EXPECT_EQ(b.used(), 0u);
  EXPECT_TRUE(b.try_claim(0, 100));
  EXPECT_EQ(b.used(), 100u);
  b.release(0, 100);
  EXPECT_EQ(b.used(), 0u);
}

TEST(TierBudget, StealsAcrossShardsExactly) {
  // 4 shards x 250.  A 900-byte claim must gather from every shard.
  ooc::TierBudget b(1000, 4);
  EXPECT_TRUE(b.try_claim(1, 900));
  EXPECT_EQ(b.used(), 900u);
  EXPECT_GE(b.steals(), 1u);
  // Exactly 100 left node-wide: 101 fails, 100 succeeds.
  EXPECT_FALSE(b.try_claim(2, 101));
  EXPECT_EQ(b.used(), 900u); // failed claim restored every byte
  EXPECT_TRUE(b.try_claim(2, 100));
  EXPECT_EQ(b.used(), 1000u);
  b.release(1, 900);
  b.release(2, 100);
  EXPECT_EQ(b.used(), 0u);
}

TEST(TierBudget, UnevenCapacitySplitStillSumsToCapacity) {
  ooc::TierBudget b(1003, 4); // remainder lands on shard 0
  std::uint64_t total = 0;
  for (std::int32_t s = 0; s < b.num_shards(); ++s) {
    total += b.available(s);
  }
  EXPECT_EQ(total, 1003u);
  EXPECT_TRUE(b.try_claim(3, 1003));
  EXPECT_FALSE(b.try_claim(0, 1));
}

TEST(TierBudget, ConcurrentClaimReleaseConservesBytes) {
  ooc::TierBudget b(1 << 20, 8);
  std::atomic<bool> go{false};
  std::vector<std::thread> ts;
  for (int t = 0; t < 8; ++t) {
    ts.emplace_back([&b, &go, t] {
      while (!go.load()) std::this_thread::yield();
      const std::int32_t home = t % b.num_shards();
      for (int i = 0; i < 2000; ++i) {
        const std::uint64_t n = 64 + static_cast<std::uint64_t>(
                                         (i * 37 + t * 101) % 4096);
        if (b.try_claim(home, n)) b.release(home, n);
      }
    });
  }
  go.store(true);
  for (auto& t : ts) t.join();
  EXPECT_EQ(b.used(), 0u); // every claimed byte came back
}

// ------------------------------------------------- sharded engine parity

/// Drive the serial and sharded engines through the same MultiIo
/// event sequence and require identical traffic stats.
TEST(ShardedEngine, MirrorsSerialEngineOnSequentialWorkload) {
  constexpr int kPes = 4;
  constexpr std::uint64_t kBlock = 1000;
  constexpr std::uint64_t kCap = 4 * kBlock; // 4 resident blocks max

  ooc::PolicyEngine::Config sc;
  sc.strategy = ooc::Strategy::MultiIo;
  sc.num_pes = kPes;
  sc.fast_capacity = kCap;
  ooc::PolicyEngine serial(sc);

  rt::ShardedEngine::Config hc;
  hc.num_pes = kPes;
  hc.fast_capacity = kCap;
  rt::ShardedEngine sharded(hc);

  for (ooc::BlockId b = 0; b < 12; ++b) {
    serial.add_block(b, kBlock);
    sharded.add_block(b, kBlock);
  }

  // Each engine executes commands immediately (depth-first), exactly
  // like tests/instant_executor.hpp does for the serial engine.
  struct Driver {
    std::function<std::vector<ooc::Command>(const ooc::TaskDesc&)> arrive;
    std::function<std::vector<ooc::Command>(const ooc::Command&)> finish;
    void pump(std::vector<ooc::Command> cmds) {
      for (std::size_t i = 0; i < cmds.size(); ++i) {
        auto more = finish(cmds[i]);
        cmds.insert(cmds.end(), more.begin(), more.end());
      }
    }
  };

  Driver ds;
  ds.arrive = [&](const ooc::TaskDesc& d) {
    return serial.on_task_arrived(d);
  };
  ds.finish = [&](const ooc::Command& c) -> std::vector<ooc::Command> {
    switch (c.kind) {
      case ooc::Command::Kind::Fetch:
        return serial.on_fetch_complete(c.block);
      case ooc::Command::Kind::Evict:
        return serial.on_evict_complete(c.block);
      case ooc::Command::Kind::Run:
        return serial.on_task_complete(c.task);
    }
    return {};
  };

  Driver dh;
  dh.arrive = [&](const ooc::TaskDesc& d) {
    return sharded.on_task_arrived(d);
  };
  dh.finish = [&](const ooc::Command& c) -> std::vector<ooc::Command> {
    switch (c.kind) {
      case ooc::Command::Kind::Fetch:
        return sharded.on_fetch_complete(c.block);
      case ooc::Command::Kind::Evict:
        return sharded.on_evict_complete(c.block);
      case ooc::Command::Kind::Run:
        return sharded.on_task_complete(c.task, c.pe);
    }
    return {};
  };

  ooc::TaskId next = 1;
  for (int round = 0; round < 6; ++round) {
    for (int pe = 0; pe < kPes; ++pe) {
      ooc::TaskDesc d;
      d.id = next++;
      d.pe = pe;
      // Two deps: one private, one shared with the neighbouring PE so
      // tasks cross shard boundaries.
      d.deps = {{static_cast<ooc::BlockId>(pe), ooc::AccessMode::ReadWrite},
                {static_cast<ooc::BlockId>(4 + (pe + round) % 8),
                 ooc::AccessMode::ReadOnly}};
      ds.pump(ds.arrive(d));
      dh.pump(dh.arrive(d));
    }
  }

  EXPECT_TRUE(serial.quiescent());
  EXPECT_TRUE(sharded.quiescent());
  const auto a = serial.stats();
  const auto b = sharded.stats();
  EXPECT_EQ(a.tasks_run, b.tasks_run);
  EXPECT_EQ(a.fetches, b.fetches);
  EXPECT_EQ(a.fetch_bytes, b.fetch_bytes);
  EXPECT_EQ(a.evicts, b.evicts);
  EXPECT_EQ(a.evict_bytes, b.evict_bytes);
  EXPECT_EQ(serial.fast_used(), sharded.fast_used());
  EXPECT_EQ(sharded.fast_used(), 0u);
}

TEST(ShardedEngine, AllOrNothingAdmissionAndFifo) {
  rt::ShardedEngine::Config hc;
  hc.num_pes = 1;
  hc.fast_capacity = 2000;
  hc.fair_admission = false;
  rt::ShardedEngine eng(hc);
  eng.add_block(0, 1500);
  eng.add_block(1, 1500);

  ooc::TaskDesc t1;
  t1.id = 1;
  t1.deps = {{0, ooc::AccessMode::ReadWrite}};
  auto c1 = eng.on_task_arrived(t1); // claims 1500, fetch issued
  ASSERT_EQ(c1.size(), 1u);
  EXPECT_EQ(c1[0].kind, ooc::Command::Kind::Fetch);

  ooc::TaskDesc t2;
  t2.id = 2;
  t2.deps = {{1, ooc::AccessMode::ReadWrite}};
  EXPECT_TRUE(eng.on_task_arrived(t2).empty()); // 3000 > 2000: waits
  EXPECT_EQ(eng.total_waiting(), 1u);

  auto c2 = eng.on_fetch_complete(0);
  ASSERT_EQ(c2.size(), 1u); // task 1 runnable; task 2 still blocked
  EXPECT_EQ(c2[0].kind, ooc::Command::Kind::Run);

  auto c3 = eng.on_task_complete(1, 0); // evicts block 0
  ASSERT_EQ(c3.size(), 1u);
  EXPECT_EQ(c3[0].kind, ooc::Command::Kind::Evict);

  auto c4 = eng.on_evict_complete(0); // capacity back: admit task 2
  ASSERT_EQ(c4.size(), 1u);
  EXPECT_EQ(c4[0].kind, ooc::Command::Kind::Fetch);
  EXPECT_EQ(c4[0].block, 1u);
  EXPECT_EQ(eng.total_waiting(), 0u);

  auto c5 = eng.on_fetch_complete(1);
  ASSERT_EQ(c5.size(), 1u);
  auto c6 = eng.on_task_complete(2, 0);
  ASSERT_EQ(c6.size(), 1u);
  EXPECT_TRUE(eng.on_evict_complete(1).empty());
  EXPECT_TRUE(eng.quiescent());
}

TEST(ShardedEngine, FetchDedupAcrossShards) {
  // Two tasks on different PEs (different shards) share one block:
  // exactly one fetch, both runnable when it lands.
  rt::ShardedEngine::Config hc;
  hc.num_pes = 2;
  hc.fast_capacity = 10000;
  rt::ShardedEngine eng(hc);
  eng.add_block(0, 1000);

  ooc::TaskDesc a;
  a.id = 1;
  a.pe = 0;
  a.deps = {{0, ooc::AccessMode::ReadOnly}};
  ooc::TaskDesc b;
  b.id = 2;
  b.pe = 1;
  b.deps = {{0, ooc::AccessMode::ReadOnly}};

  auto ca = eng.on_task_arrived(a);
  ASSERT_EQ(ca.size(), 1u);
  EXPECT_EQ(ca[0].kind, ooc::Command::Kind::Fetch);
  EXPECT_TRUE(eng.on_task_arrived(b).empty()); // joins the same fetch

  auto runs = eng.on_fetch_complete(0);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].kind, ooc::Command::Kind::Run);
  EXPECT_EQ(runs[1].kind, ooc::Command::Kind::Run);
  EXPECT_EQ(eng.stats().fetches, 1u);
  EXPECT_EQ(eng.stats().fetch_dedup_hits, 1u);

  // Second completion releases the shared block.
  EXPECT_TRUE(eng.on_task_complete(1, 0).empty()); // still claimed by 2
  auto ev = eng.on_task_complete(2, 1);
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].kind, ooc::Command::Kind::Evict);
  (void)eng.on_evict_complete(0);
  EXPECT_TRUE(eng.quiescent());
}

// --------------------------------------------------- runtime level tests

TEST(RtConcurrency, ShardedIsTheMultiIoDefault) {
  rt::Runtime::Config cfg;
  cfg.strategy = ooc::Strategy::MultiIo;
  cfg.num_pes = 2;
  cfg.mem_scale = 1.0 / 4096;
  rt::Runtime rt(cfg);
  EXPECT_TRUE(rt.sharded());
  EXPECT_EQ(rt.engine_shards(), 2);

  cfg.engine_shards = 1; // explicit global-lock baseline
  rt::Runtime rt2(cfg);
  EXPECT_FALSE(rt2.sharded());

  cfg.engine_shards = 0;
  cfg.strategy = ooc::Strategy::SingleIo; // global policy: serial path
  rt::Runtime rt3(cfg);
  EXPECT_FALSE(rt3.sharded());
}

TEST(RtConcurrency, BatchedSendsExecuteInOrder) {
  rt::Runtime::Config cfg;
  cfg.num_pes = 1;
  cfg.mem_scale = 1.0 / 4096;
  rt::Runtime rt(cfg);
  std::vector<int> order;
  std::vector<rt::Runtime::Body> bodies;
  for (int i = 0; i < 64; ++i) {
    bodies.push_back([&order, i] { order.push_back(i); });
  }
  rt.send_batch(0, std::move(bodies));
  rt.wait_idle();
  ASSERT_EQ(order.size(), 64u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(RtConcurrency, PrefetchBatchRunsEveryTaskWithResidentData) {
  rt::Runtime::Config cfg;
  cfg.num_pes = 4;
  cfg.mem_scale = 1.0 / 4096; // 4 MiB fast tier
  rt::Runtime rt(cfg);
  ASSERT_TRUE(rt.sharded());

  constexpr int kBlocks = 16; // 16 x 512 KiB = 2x the fast tier
  std::vector<std::unique_ptr<rt::IoHandle<double>>> hs;
  for (int b = 0; b < kBlocks; ++b) {
    hs.push_back(
        std::make_unique<rt::IoHandle<double>>(rt, 64 * 1024));
  }
  const auto fast = cfg.model.fast;
  std::atomic<int> wrong_tier{0};
  std::atomic<int> ran{0};
  for (int pe = 0; pe < 4; ++pe) {
    std::vector<rt::Runtime::PrefetchMsg> batch;
    for (int t = 0; t < 24; ++t) {
      const int b = (pe * 24 + t) % kBlocks;
      rt::Runtime::PrefetchMsg m;
      m.deps = {hs[static_cast<std::size_t>(b)]->dep(
          ooc::AccessMode::ReadWrite)};
      m.body = [&, b] {
        if (rt.memory().block_tier(
                hs[static_cast<std::size_t>(b)]->id()) != fast) {
          wrong_tier.fetch_add(1);
        }
        ran.fetch_add(1);
      };
      batch.push_back(std::move(m));
    }
    rt.send_prefetch_batch(pe, std::move(batch));
  }
  rt.wait_idle();
  EXPECT_EQ(ran.load(), 96);
  EXPECT_EQ(wrong_tier.load(), 0);
  EXPECT_EQ(rt.tasks_executed(), 96u);
  const auto st = rt.policy_stats();
  EXPECT_EQ(st.tasks_run, 96u);
  // Eager eviction at quiescence: nothing left in the fast tier.
  EXPECT_EQ(rt.memory().usage(fast).live_blocks, 0u);
}

TEST(RtConcurrency, StressSharedBlocksAcrossShards) {
  // Many concurrent senders, cross-PE shared dependences, repeated
  // idle barriers and block churn between rounds.  Exercises shard
  // handoff (fetch on PE a's shard, waiter on PE b's), the budget
  // stealing path and the atomic quiescence counters.
  rt::Runtime::Config cfg;
  cfg.num_pes = 4;
  cfg.mem_scale = 1.0 / 8192; // 2 MiB fast tier: heavy churn
  rt::Runtime rt(cfg);
  ASSERT_TRUE(rt.sharded());

  constexpr int kRounds = 6;
  constexpr int kBlocks = 24;
  constexpr std::uint64_t kBytes = 128 * 1024;
  std::atomic<std::uint64_t> sum{0};
  std::uint64_t expected = 0;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<mem::BlockId> blocks;
    for (int b = 0; b < kBlocks; ++b) {
      blocks.push_back(rt.alloc_block(kBytes));
    }
    std::vector<std::thread> senders;
    for (int pe = 0; pe < 4; ++pe) {
      senders.emplace_back([&, pe] {
        for (int t = 0; t < 16; ++t) {
          rt::Runtime::DepList deps = {
              {blocks[static_cast<std::size_t>((pe * 16 + t) % kBlocks)],
               ooc::AccessMode::ReadWrite},
              {blocks[static_cast<std::size_t>((pe * 16 + t + 5) %
                                               kBlocks)],
               ooc::AccessMode::ReadOnly}};
          rt.send_prefetch(pe, std::move(deps),
                           [&sum] { sum.fetch_add(1); });
        }
      });
    }
    for (auto& s : senders) s.join();
    expected += 4 * 16;
    rt.wait_idle();
    for (const auto b : blocks) rt.free_block(b);
  }
  EXPECT_EQ(sum.load(), expected);
  EXPECT_EQ(rt.tasks_executed(), expected);
  const auto st = rt.policy_stats();
  EXPECT_EQ(st.tasks_run, expected);
  EXPECT_EQ(st.fetches, st.evicts); // every fetched block went home
}

TEST(RtConcurrency, GlobalAndShardedAgreeOnSerializedWorkload) {
  // One task in flight at a time: scheduling decisions are forced, so
  // both engines must produce identical traffic.
  auto run = [](int engine_shards) {
    rt::Runtime::Config cfg;
    cfg.num_pes = 2;
    cfg.mem_scale = 1.0 / 4096;
    cfg.engine_shards = engine_shards;
    rt::Runtime rt(cfg);
    rt::IoHandle<std::uint64_t> h(rt, 4096);
    for (std::uint64_t i = 0; i < h.size(); ++i) h[i] = i;
    for (int t = 0; t < 12; ++t) {
      rt.send_prefetch(t % 2, {h.dep(ooc::AccessMode::ReadWrite)}, [&h] {
        for (std::uint64_t i = 0; i < h.size(); ++i) h[i] += 1;
      });
      rt.wait_idle();
    }
    for (std::uint64_t i = 0; i < h.size(); ++i) {
      EXPECT_EQ(h[i], i + 12);
    }
    return rt.policy_stats();
  };
  const auto g = run(1);
  const auto s = run(0);
  EXPECT_EQ(g.tasks_run, s.tasks_run);
  EXPECT_EQ(g.fetches, s.fetches);
  EXPECT_EQ(g.fetch_bytes, s.fetch_bytes);
  EXPECT_EQ(g.evicts, s.evicts);
  EXPECT_EQ(g.evict_bytes, s.evict_bytes);
}

TEST(RtConcurrency, ChunkedMigrationInsideTheRuntime) {
  // A block big enough to chunk (>= 1 MiB threshold) round-trips with
  // its contents intact while IO threads are free to assist.
  rt::Runtime::Config cfg;
  cfg.num_pes = 2;
  cfg.mem_scale = 1.0 / 1024; // 16 MiB fast tier
  ASSERT_GT(cfg.chunk_threshold, 0u);
  rt::Runtime rt(cfg);
  rt::IoHandle<std::uint64_t> h(rt, (4u << 20) / sizeof(std::uint64_t));
  for (std::uint64_t i = 0; i < h.size(); ++i) h[i] = i * 3 + 1;
  for (int t = 0; t < 4; ++t) {
    rt.send_prefetch(t % 2, {h.dep(ooc::AccessMode::ReadWrite)}, [&h] {
      for (std::uint64_t i = 0; i < h.size(); ++i) h[i] += 1;
    });
    rt.wait_idle();
  }
  for (std::uint64_t i = 0; i < h.size(); ++i) {
    ASSERT_EQ(h[i], i * 3 + 5);
  }
  // 4 fetches + 4 evicts of a 4 MiB block, all above the threshold.
  EXPECT_EQ(rt.memory().chunk_ring().jobs(), 8u);
}

} // namespace
} // namespace hmr
