// Configuration-matrix sweep of the threaded runtime: every scheduling
// strategy crossed with eviction mode, buffer pooling and the
// write-only no-copy optimization, all validated on a data-integrity
// workload with real migration.

#include <gtest/gtest.h>

#include <atomic>
#include <tuple>

#include "rt/io_handle.hpp"
#include "rt/runtime.hpp"
#include "util/units.hpp"

namespace hmr::rt {
namespace {

using MatrixParam = std::tuple<ooc::Strategy, bool /*eager*/,
                               bool /*pool*/, bool /*nocopy*/>;

std::string matrix_name(const ::testing::TestParamInfo<MatrixParam>& info) {
  const auto& [s, eager, pool, nocopy] = info.param;
  std::string n = ooc::strategy_name(s);
  n += eager ? "_eager" : "_lazy";
  if (pool) n += "_pool";
  if (nocopy) n += "_nocopy";
  return n;
}

class RtMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(RtMatrix, PipelineComputesCorrectly) {
  const auto& [strategy, eager, pool, nocopy] = GetParam();
  Runtime::Config cfg;
  cfg.strategy = strategy;
  cfg.num_pes = 3;
  cfg.mem_scale = 1.0 / 8192; // 2 MiB fast tier
  cfg.eager_evict = eager;
  cfg.memory_pool = pool;
  cfg.writeonly_nocopy = nocopy;
  Runtime rt(cfg);

  // A 3-stage pipeline over 6 independent lanes: src -> mid -> dst,
  // each stage a [prefetch] task; the working set (6 lanes x 3 blocks
  // x 256 KiB = 4.5 MiB) overflows the 2 MiB fast tier.
  constexpr int kLanes = 6;
  constexpr std::uint64_t kElems = 32 * KiB; // 256 KiB per block
  std::vector<IoHandle<double>> src, mid, dst;
  for (int l = 0; l < kLanes; ++l) {
    src.emplace_back(rt, kElems);
    mid.emplace_back(rt, kElems);
    dst.emplace_back(rt, kElems);
    for (std::uint64_t i = 0; i < kElems; ++i) {
      src.back()[i] = l * 1000.0 + static_cast<double>(i % 101);
    }
  }

  for (int l = 0; l < kLanes; ++l) {
    auto& s = src[static_cast<std::size_t>(l)];
    auto& m = mid[static_cast<std::size_t>(l)];
    rt.send_prefetch(l % 3,
                     {s.dep(ooc::AccessMode::ReadOnly),
                      m.dep(ooc::AccessMode::WriteOnly)},
                     [&s, &m] {
                       for (std::uint64_t i = 0; i < kElems; ++i) {
                         m[i] = s[i] * 2.0;
                       }
                     });
  }
  rt.wait_idle();
  for (int l = 0; l < kLanes; ++l) {
    auto& m = mid[static_cast<std::size_t>(l)];
    auto& d = dst[static_cast<std::size_t>(l)];
    rt.send_prefetch(l % 3,
                     {m.dep(ooc::AccessMode::ReadOnly),
                      d.dep(ooc::AccessMode::WriteOnly)},
                     [&m, &d] {
                       for (std::uint64_t i = 0; i < kElems; ++i) {
                         d[i] = m[i] + 1.0;
                       }
                     });
  }
  rt.wait_idle();

  for (int l = 0; l < kLanes; ++l) {
    auto& d = dst[static_cast<std::size_t>(l)];
    for (std::uint64_t i = 0; i < kElems; i += 1003) {
      ASSERT_EQ(d[i], (l * 1000.0 + static_cast<double>(i % 101)) * 2 + 1)
          << "lane " << l << " elem " << i;
    }
  }

  const auto st = rt.policy_stats();
  EXPECT_EQ(st.tasks_run, 2u * kLanes);
  if (ooc::strategy_moves_data(strategy)) {
    EXPECT_GT(st.fetches, 0u);
    if (eager) {
      // Everything returns to the slow tier at quiescence.
      EXPECT_EQ(rt.memory().usage(cfg.model.fast).used -
                    rt.memory().usage(cfg.model.fast).pooled,
                0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RtMatrix,
    ::testing::Combine(
        ::testing::Values(ooc::Strategy::Naive, ooc::Strategy::SingleIo,
                          ooc::Strategy::SyncNoIo, ooc::Strategy::MultiIo),
        ::testing::Bool(),  // eager / lazy eviction
        ::testing::Bool(),  // buffer pool
        ::testing::Bool()), // writeonly_nocopy
    matrix_name);

} // namespace
} // namespace hmr::rt
