// Tests for the threaded charm-lite runtime: message delivery,
// prefetch interception, real block migration around task execution,
// quiescence, and strategy coverage.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <numeric>

#include "rt/chare.hpp"
#include "rt/io_handle.hpp"
#include "rt/runtime.hpp"
#include "util/units.hpp"

namespace hmr::rt {
namespace {

Runtime::Config small_config(ooc::Strategy s, int pes = 2) {
  Runtime::Config cfg;
  cfg.strategy = s;
  cfg.num_pes = pes;
  cfg.mem_scale = 1.0 / 4096; // 4 MiB fast / 24 MiB slow
  return cfg;
}

TEST(Runtime, PlainMessagesExecute) {
  Runtime rt(small_config(ooc::Strategy::MultiIo));
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    rt.send(i % 2, [&count] { count.fetch_add(1); });
  }
  rt.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(Runtime, PlainMessagesKeepPerPeFifoOrder) {
  Runtime rt(small_config(ooc::Strategy::MultiIo, /*pes=*/1));
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    rt.send(0, [&order, i] { order.push_back(i); });
  }
  rt.wait_idle();
  ASSERT_EQ(order.size(), 50u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(Runtime, PrefetchTaskSeesBlockInFastTier) {
  auto cfg = small_config(ooc::Strategy::MultiIo);
  Runtime rt(cfg);
  IoHandle<double> h(rt, 1024);
  const auto fast = cfg.model.fast;
  const auto slow = cfg.model.slow;
  // Movement strategies place fresh blocks on the slow tier.
  EXPECT_EQ(rt.memory().block_tier(h.id()), slow);

  std::atomic<int> seen_tier{-1};
  rt.send_prefetch(0, {h.dep(ooc::AccessMode::ReadWrite)},
                   [&rt, &h, &seen_tier] {
                     seen_tier = static_cast<int>(
                         rt.memory().block_tier(h.id()));
                   });
  rt.wait_idle();
  EXPECT_EQ(seen_tier.load(), static_cast<int>(fast));
  // Eager eviction returns it to the slow tier at quiescence.
  EXPECT_EQ(rt.memory().block_tier(h.id()), slow);
}

TEST(Runtime, DataSurvivesMigrationRoundTrips) {
  Runtime rt(small_config(ooc::Strategy::MultiIo));
  IoHandle<std::uint64_t> h(rt, 4096);
  for (std::uint64_t i = 0; i < h.size(); ++i) h[i] = i;
  // 20 tasks each increment every element; data migrates slow->fast
  // and back around every task.
  for (int t = 0; t < 20; ++t) {
    rt.send_prefetch(t % 2, {h.dep(ooc::AccessMode::ReadWrite)}, [&h] {
      for (std::uint64_t i = 0; i < h.size(); ++i) h[i] += 1;
    });
    rt.wait_idle(); // serialize increments across PEs
  }
  for (std::uint64_t i = 0; i < h.size(); ++i) {
    ASSERT_EQ(h[i], i + 20);
  }
  const auto st = rt.policy_stats();
  EXPECT_EQ(st.tasks_run, 20u);
  EXPECT_EQ(st.fetches, 20u);
  EXPECT_EQ(st.evicts, 20u);
}

class RuntimeStrategies : public ::testing::TestWithParam<ooc::Strategy> {};

TEST_P(RuntimeStrategies, ManyTasksOverflowTheFastTier) {
  // 16 blocks x 512 KiB = 8 MiB working set vs 4 MiB fast tier: data
  // must stream through. Every task checks its block's content.
  Runtime rt(small_config(GetParam(), /*pes=*/4));
  constexpr int kBlocks = 16;
  std::vector<IoHandle<double>> hs;
  hs.reserve(kBlocks);
  for (int b = 0; b < kBlocks; ++b) {
    hs.emplace_back(rt, 64 * KiB); // 512 KiB each
    for (std::uint64_t i = 0; i < hs.back().size(); i += 97) {
      hs.back()[i] = b + 1;
    }
  }
  std::atomic<int> ok{0};
  for (int round = 0; round < 3; ++round) {
    for (int b = 0; b < kBlocks; ++b) {
      auto& h = hs[static_cast<std::size_t>(b)];
      rt.send_prefetch(b % 4, {h.dep(ooc::AccessMode::ReadOnly)},
                       [&h, &ok, b] {
                         bool good = true;
                         for (std::uint64_t i = 0; i < h.size(); i += 97) {
                           good &= h[i] == b + 1;
                         }
                         if (good) ok.fetch_add(1);
                       });
    }
    rt.wait_idle();
  }
  EXPECT_EQ(ok.load(), 3 * kBlocks);
  if (ooc::strategy_moves_data(GetParam())) {
    EXPECT_GT(rt.policy_stats().fetch_bytes, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, RuntimeStrategies,
    ::testing::Values(ooc::Strategy::Naive, ooc::Strategy::SingleIo,
                      ooc::Strategy::SyncNoIo, ooc::Strategy::MultiIo),
    [](const auto& pi) { return ooc::strategy_name(pi.param); });

TEST(Runtime, NaivePlacementPacksFastTierFirst) {
  auto cfg = small_config(ooc::Strategy::Naive);
  Runtime rt(cfg);
  // Fast tier is 4 MiB: the first three 1.5 MiB blocks cannot all fit.
  IoHandle<double> h1(rt, 192 * KiB), h2(rt, 192 * KiB), h3(rt, 192 * KiB);
  EXPECT_EQ(rt.memory().block_tier(h1.id()), cfg.model.fast);
  EXPECT_EQ(rt.memory().block_tier(h2.id()), cfg.model.fast);
  EXPECT_EQ(rt.memory().block_tier(h3.id()), cfg.model.slow);
}

TEST(Runtime, MemoryPoolOptionWorks) {
  auto cfg = small_config(ooc::Strategy::MultiIo);
  cfg.memory_pool = true;
  Runtime rt(cfg);
  IoHandle<double> h(rt, 64 * KiB);
  std::atomic<int> runs{0};
  for (int t = 0; t < 8; ++t) {
    rt.send_prefetch(0, {h.dep(ooc::AccessMode::ReadWrite)},
                     [&runs] { runs.fetch_add(1); });
    rt.wait_idle();
  }
  EXPECT_EQ(runs.load(), 8);
  // Migration buffers got recycled through the pool.
  EXPECT_GT(rt.memory().usage(cfg.model.fast).pooled, 0u);
}

TEST(Runtime, SharedReadOnlyBlockRefcounting) {
  Runtime rt(small_config(ooc::Strategy::MultiIo, /*pes=*/4));
  IoHandle<double> shared(rt, 64 * KiB);
  shared[0] = 42.0;
  std::atomic<int> ok{0};
  for (int i = 0; i < 16; ++i) {
    rt.send_prefetch(i % 4, {shared.dep(ooc::AccessMode::ReadOnly)},
                     [&shared, &ok] {
                       if (shared[0] == 42.0) ok.fetch_add(1);
                     });
  }
  rt.wait_idle();
  EXPECT_EQ(ok.load(), 16);
  // Sharing must dedup some fetches (16 tasks, far fewer migrations).
  EXPECT_LT(rt.policy_stats().fetches, 16u);
}

TEST(Runtime, TracerRecordsCompute) {
  auto cfg = small_config(ooc::Strategy::MultiIo);
  cfg.trace = true;
  Runtime rt(cfg);
  IoHandle<double> h(rt, 16 * KiB);
  rt.send_prefetch(0, {h.dep(ooc::AccessMode::ReadWrite)}, [] {
    volatile double x = 0;
    for (int i = 0; i < 100000; ++i) x = x + 1;
  });
  rt.wait_idle();
  const auto s = rt.tracer().summarize();
  EXPECT_GE(s.count_of(trace::Category::Compute), 1u);
  EXPECT_GE(s.count_of(trace::Category::Prefetch), 1u);
}

TEST(Runtime, TasksFromTasksWork) {
  // Entry methods can send further messages (charm-style chaining).
  Runtime rt(small_config(ooc::Strategy::MultiIo));
  IoHandle<double> h(rt, 16 * KiB);
  std::atomic<int> chain{0};
  std::function<void(int)> launch = [&](int depth) {
    rt.send_prefetch(depth % 2, {h.dep(ooc::AccessMode::ReadWrite)},
                     [&, depth] {
                       chain.fetch_add(1);
                       if (depth < 9) launch(depth + 1);
                     });
  };
  launch(0);
  rt.wait_idle();
  EXPECT_EQ(chain.load(), 10);
}

TEST(Runtime, DestructorDrainsOutstandingWork) {
  std::atomic<int> count{0};
  {
    Runtime rt(small_config(ooc::Strategy::SyncNoIo));
    IoHandle<double> h(rt, 16 * KiB);
    for (int i = 0; i < 10; ++i) {
      rt.send_prefetch(i % 2, {h.dep(ooc::AccessMode::ReadWrite)},
                       [&count] { count.fetch_add(1); });
    }
    // No wait_idle: the destructor must drain.
  }
  EXPECT_EQ(count.load(), 10);
}

} // namespace
} // namespace hmr::rt

namespace hmr::rt {
namespace {

TEST(Runtime, FreeBlockReleasesCapacity) {
  Runtime rt(small_config(ooc::Strategy::MultiIo));
  const auto slow = rt.config().model.slow;
  const auto used_before = rt.memory().usage(slow).used;
  mem::BlockId b;
  {
    IoHandle<double> h(rt, 64 * KiB);
    b = h.id();
    EXPECT_GT(rt.memory().usage(slow).used, used_before);
    rt.free_block(b);
  }
  EXPECT_EQ(rt.memory().usage(slow).used, used_before);
}

TEST(Runtime, FreeClaimedBlockDies) {
  Runtime rt(small_config(ooc::Strategy::Naive));
  IoHandle<double> h(rt, 16 * KiB);
  // Naive: no claims ever; freeing mid-flight is a task-time concern,
  // so exercise the engine-side guard with an unknown id instead.
  rt.free_block(h.id());
  EXPECT_DEATH(rt.free_block(h.id()), "dead block|unknown block");
}

TEST(Runtime, WriteonlyNocopySkipsTheCopyButKeepsWrites) {
  auto cfg = small_config(ooc::Strategy::MultiIo);
  cfg.writeonly_nocopy = true;
  Runtime rt(cfg);
  IoHandle<double> in(rt, 16 * KiB);
  IoHandle<double> out(rt, 16 * KiB);
  for (std::uint64_t i = 0; i < in.size(); ++i) in[i] = double(i);
  rt.send_prefetch(0,
                   {in.dep(ooc::AccessMode::ReadOnly),
                    out.dep(ooc::AccessMode::WriteOnly)},
                   [&] {
                     // `out` arrived without its old contents; the task
                     // fully overwrites it, as WriteOnly promises.
                     for (std::uint64_t i = 0; i < out.size(); ++i) {
                       out[i] = in[i] * 3.0;
                     }
                   });
  rt.wait_idle();
  for (std::uint64_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], 3.0 * double(i));
  }
}

TEST(Runtime, EvictByWorkerOptionRuns) {
  auto cfg = small_config(ooc::Strategy::MultiIo);
  cfg.evict_by_worker = true;
  Runtime rt(cfg);
  IoHandle<double> h(rt, 32 * KiB);
  std::atomic<int> runs{0};
  for (int i = 0; i < 6; ++i) {
    rt.send_prefetch(i % 2, {h.dep(ooc::AccessMode::ReadWrite)},
                     [&runs] { runs.fetch_add(1); });
    rt.wait_idle();
  }
  EXPECT_EQ(runs.load(), 6);
  EXPECT_EQ(rt.policy_stats().evicts, 6u);
}

TEST(Runtime, LazyEvictionKeepsBlocksWarm) {
  auto cfg = small_config(ooc::Strategy::MultiIo);
  cfg.eager_evict = false;
  Runtime rt(cfg);
  const auto fast = rt.config().model.fast;
  IoHandle<double> h(rt, 64 * KiB);
  for (int i = 0; i < 4; ++i) {
    rt.send_prefetch(0, {h.dep(ooc::AccessMode::ReadWrite)}, [] {});
    rt.wait_idle();
    // Lazy: the block stays parked in the fast tier between tasks.
    EXPECT_EQ(rt.memory().block_tier(h.id()), fast);
  }
  // One fetch total: subsequent tasks reuse the warm block.
  EXPECT_EQ(rt.policy_stats().fetches, 1u);
  EXPECT_EQ(rt.policy_stats().lru_reclaims, 3u);
}

} // namespace
} // namespace hmr::rt

namespace hmr::rt {
namespace {

TEST(Runtime, AdaptiveGuidanceStepsAtEveryIdleBarrier) {
  // Adaptive mode in the threaded runtime: wait_idle() is the phase
  // boundary.  The guidance components must see every phase and stay
  // within their configured bounds while real tasks flow through.
  auto cfg = small_config(ooc::Strategy::MultiIo, /*pes=*/2);
  cfg.adaptive = true;
  cfg.profiler_cfg.top_k = 4; // tighter than the block count below
  Runtime rt(cfg);
  std::vector<std::unique_ptr<IoHandle<double>>> blocks;
  for (int i = 0; i < 6; ++i) {
    blocks.push_back(std::make_unique<IoHandle<double>>(rt, 4096));
  }
  std::atomic<int> ran{0};
  for (int phase = 0; phase < 3; ++phase) {
    for (int t = 0; t < 12; ++t) {
      auto& h = *blocks[static_cast<std::size_t>(t) % blocks.size()];
      rt.send_prefetch(t % rt.num_pes(),
                       {h.dep(ooc::AccessMode::ReadOnly)},
                       [&ran] { ran.fetch_add(1); });
    }
    rt.wait_idle();
  }
  EXPECT_EQ(ran.load(), 36);
  ASSERT_NE(rt.governor(), nullptr);
  EXPECT_GE(rt.governor()->phases_observed(), 3);
  ASSERT_NE(rt.profiler(), nullptr);
  EXPECT_LE(rt.profiler()->tracked(), 4u);
  EXPECT_EQ(rt.policy_stats().tasks_run, 36u);
}

TEST(Runtime, ThreadPinningOptionRuns) {
  // Functional smoke test: pinning must not break execution even when
  // the host has fewer cores than threads (it degrades to a no-op).
  auto cfg = small_config(ooc::Strategy::MultiIo, /*pes=*/2);
  cfg.pin_threads = true;
  Runtime rt(cfg);
  IoHandle<double> h(rt, 16 * KiB);
  std::atomic<int> runs{0};
  for (int i = 0; i < 4; ++i) {
    rt.send_prefetch(i % 2, {h.dep(ooc::AccessMode::ReadWrite)},
                     [&runs] { runs.fetch_add(1); });
  }
  rt.wait_idle();
  EXPECT_EQ(runs.load(), 4);
}

/// Shared driver for the zero-copy on/off equivalence check: a
/// streaming working set (re-fetch after evict keeps shadows hot),
/// read-only verification rounds plus serialized read-write rounds
/// (exercising mark_dirty invalidation).  Returns the final contents.
/// Threaded fetch/evict counts are interleaving-dependent, so only
/// deterministic invariants are compared here; the byte-exact stats
/// lock against the seed engine lives in test_tier_equivalence.cpp.
struct ZeroCopyRun {
  std::vector<std::vector<double>> contents;
  std::uint64_t tasks = 0;
  std::uint64_t admissions = 0;
};

ZeroCopyRun run_zero_copy_workload(bool zero_copy) {
  auto cfg = small_config(ooc::Strategy::MultiIo, /*pes=*/2);
  cfg.zero_copy = zero_copy;
  ZeroCopyRun out;
  Runtime rt(cfg);
  constexpr int kBlocks = 12;
  std::vector<std::unique_ptr<IoHandle<double>>> hs;
  for (int b = 0; b < kBlocks; ++b) {
    hs.push_back(std::make_unique<IoHandle<double>>(rt, 64 * KiB));
    auto& h = *hs.back();
    for (std::uint64_t i = 0; i < h.size(); ++i) {
      h[i] = b * 1000.0 + static_cast<double>(i % 251);
    }
  }
  std::atomic<int> bad{0};
  for (int round = 0; round < 3; ++round) {
    // Read-only sweep: evict/refetch cycles where swaps may be admitted.
    for (int b = 0; b < kBlocks; ++b) {
      auto& h = *hs[static_cast<std::size_t>(b)];
      rt.send_prefetch(b % 2, {h.dep(ooc::AccessMode::ReadOnly)},
                       [&h, &bad, b] {
                         for (std::uint64_t i = 0; i < h.size(); i += 83) {
                           if (h[i] !=
                               b * 1000.0 + static_cast<double>(i % 251) +
                                   /*writes so far*/ 0.0) {
                             // RW rounds below adjust all elements back,
                             // so reads always see the base pattern.
                             bad.fetch_add(1);
                             break;
                           }
                         }
                       });
    }
    rt.wait_idle();
    // Read-write round (serialized): dirties blocks, invalidating any
    // retained shadow; a stale-swap bug would surface in the next
    // read-only sweep.
    for (int b = 0; b < kBlocks; ++b) {
      auto& h = *hs[static_cast<std::size_t>(b)];
      rt.send_prefetch(b % 2, {h.dep(ooc::AccessMode::ReadWrite)}, [&h] {
        for (std::uint64_t i = 0; i < h.size(); i += 7) h[i] += 1.0;
      });
      rt.wait_idle();
      rt.send_prefetch(b % 2, {h.dep(ooc::AccessMode::ReadWrite)}, [&h] {
        for (std::uint64_t i = 0; i < h.size(); i += 7) h[i] -= 1.0;
      });
      rt.wait_idle();
    }
  }
  EXPECT_EQ(bad.load(), 0);
  out.tasks = rt.policy_stats().tasks_run;
  out.admissions = rt.memory().zero_copy_admissions();
  for (auto& hp : hs) {
    out.contents.emplace_back(&(*hp)[0], &(*hp)[0] + hp->size());
  }
  return out;
}

TEST(Runtime, ZeroCopyAdmissionIsTransparentUnderThreads) {
  const ZeroCopyRun off = run_zero_copy_workload(false);
  const ZeroCopyRun on = run_zero_copy_workload(true);
  EXPECT_EQ(off.admissions, 0u);
  EXPECT_GT(on.admissions, 0u);
  EXPECT_EQ(on.tasks, off.tasks);
  ASSERT_EQ(on.contents.size(), off.contents.size());
  for (std::size_t b = 0; b < on.contents.size(); ++b) {
    ASSERT_EQ(on.contents[b], off.contents[b]) << "block " << b;
  }
}

} // namespace
} // namespace hmr::rt
