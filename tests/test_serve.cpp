// Multi-tenant serving (src/serve/): quota-ledger conservation as a
// concurrent property test over the sharded engine, admission fairness
// (starvation aging, SLO-first release order), and the single-tenant
// byte-identical guarantee the subsystem promises (docs/SERVING.md).

#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <sstream>
#include <thread>
#include <vector>

#include "ooc/policy_engine.hpp"
#include "rt/sharded_engine.hpp"
#include "serve/admission.hpp"
#include "serve/quota.hpp"
#include "serve/tenant_engine.hpp"
#include "sim/sim_executor.hpp"
#include "sim/stencil_workload.hpp"
#include "util/units.hpp"

namespace hmr::serve {
namespace {

TenantDesc tenant(TenantId id, const std::string& name, QosClass qos,
                  std::vector<double> reserve = {}) {
  TenantDesc d;
  d.id = id;
  d.name = name;
  d.qos = qos;
  d.tier_reserve = std::move(reserve);
  return d;
}

// ---------------------------------------------------------------------
// TenantRegistry / QuotaLedger units
// ---------------------------------------------------------------------

TEST(TenantRegistry, PriorityOrderIsRankThenId) {
  TenantRegistry reg;
  reg.add(tenant(0, "batch", QosClass::Batch));
  reg.add(tenant(1, "slo", QosClass::LatencySLO));
  reg.add(tenant(2, "be", QosClass::BestEffort));
  reg.add(tenant(3, "slo2", QosClass::LatencySLO));
  EXPECT_EQ(reg.by_priority(), (std::vector<TenantId>{1, 3, 2, 0}));
}

TEST(QuotaLedger, TransferMoveReleaseConserveBytes) {
  TenantRegistry reg;
  reg.add(tenant(0, "a", QosClass::LatencySLO, {0.5}));
  reg.add(tenant(1, "b", QosClass::BestEffort, {0.25}));
  const std::vector<ooc::TierDesc> tiers = {{1, 100, 1.0}, {0, 0, 1.0}};
  QuotaLedger led(reg, tiers);
  EXPECT_EQ(led.reserved(0, 0), 50u);
  EXPECT_EQ(led.reserved(1, 0), 25u);

  led.charge(QuotaLedger::kUnowned, 1, 70);
  EXPECT_EQ(led.level_total(1), 70u);

  // Fetch within reservation: no borrow.
  EXPECT_FALSE(led.transfer(QuotaLedger::kUnowned, 0, 1, 0, 40));
  // Fetch pushing tenant b past its 25-byte reservation: a borrow.
  EXPECT_TRUE(led.transfer(QuotaLedger::kUnowned, 1, 1, 0, 30));
  EXPECT_TRUE(led.over_reserve(1, 0));
  EXPECT_FALSE(led.over_reserve(0, 0));
  EXPECT_EQ(led.level_total(0), 70u);
  EXPECT_EQ(led.level_total(1), 0u);

  // Evict moves bytes between the owner's levels, conserving totals.
  led.move(1, 0, 1, 30);
  EXPECT_EQ(led.used(1, 0), 0u);
  EXPECT_EQ(led.used(1, 1), 30u);
  EXPECT_EQ(led.level_total(0) + led.level_total(1), 70u);

  led.release(0, 0, 40);
  led.release(1, 1, 30);
  EXPECT_EQ(led.level_total(0), 0u);
  EXPECT_EQ(led.level_total(1), 0u);
}

// ---------------------------------------------------------------------
// Admission fairness
// ---------------------------------------------------------------------

ooc::TaskDesc task_of(ooc::TaskId id, std::uint32_t tenant_id) {
  ooc::TaskDesc d;
  d.id = id;
  d.tenant = tenant_id;
  return d;
}

TEST(Admission, SloNeverQueuedBehindBestEffortBurst) {
  TenantRegistry reg;
  reg.add(tenant(0, "slo", QosClass::LatencySLO));
  reg.add(tenant(1, "be", QosClass::BestEffort));
  AdmissionController adm(reg, AdmissionConfig{}, /*now=*/0);

  // A best-effort burst is already parked when the SLO work arrives.
  for (ooc::TaskId i = 0; i < 20; ++i) adm.push(1, task_of(100 + i, 1));
  adm.push(0, task_of(1, 0));

  ooc::TaskDesc out;
  bool forced = false;
  ASSERT_TRUE(adm.pop(/*now=*/1, /*engine_idle=*/false, out, forced));
  EXPECT_EQ(out.id, 1u) << "SLO task released behind the burst";
  EXPECT_FALSE(forced);
}

TEST(Admission, StarvedTenantIsEventuallyForceReleased) {
  TenantRegistry reg;
  auto slo = tenant(0, "slo", QosClass::LatencySLO);
  slo.rate_tasks_per_s = 1000;
  slo.burst_tasks = 1;
  auto batch = tenant(1, "batch", QosClass::Batch);
  batch.rate_tasks_per_s = 1e-9; // bucket never refills in test time
  batch.burst_tasks = 0;
  reg.add(std::move(slo));
  reg.add(std::move(batch));

  AdmissionConfig cfg;
  cfg.starvation_limit = 4;
  AdmissionController adm(reg, cfg, /*now=*/0);

  for (ooc::TaskId i = 0; i < 8; ++i) adm.push(0, task_of(i, 0));
  adm.push(1, task_of(99, 1));

  double now = 0;
  ooc::TaskDesc out;
  bool forced = false;
  std::vector<ooc::TaskId> order;
  while (adm.total_queued() > 0) {
    now += 0.01; // refills the SLO bucket each round
    ASSERT_TRUE(adm.pop(now, /*engine_idle=*/false, out, forced));
    order.push_back(out.id);
    if (out.id == 99) break;
  }
  // Starvation aging released the batch task after `starvation_limit`
  // SLO releases passed it over — not at the tail, not never.
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order.back(), 99u);
  EXPECT_TRUE(forced);
}

TEST(Admission, RoundRobinAmongEqualRanks) {
  TenantRegistry reg;
  reg.add(tenant(0, "be-0", QosClass::BestEffort));
  reg.add(tenant(1, "be-1", QosClass::BestEffort));
  AdmissionController adm(reg, AdmissionConfig{}, 0);
  for (ooc::TaskId i = 0; i < 3; ++i) {
    adm.push(0, task_of(i, 0));
    adm.push(1, task_of(10 + i, 1));
  }
  ooc::TaskDesc out;
  bool forced = false;
  std::vector<std::uint32_t> tenants;
  while (adm.pop(1, false, out, forced)) tenants.push_back(out.tenant);
  EXPECT_EQ(tenants,
            (std::vector<std::uint32_t>{0, 1, 0, 1, 0, 1}));
}

// ---------------------------------------------------------------------
// Quota conservation under concurrency (the TSan target)
// ---------------------------------------------------------------------

// Four threads drive four tenants' task streams through a TenantEngine
// wrapping the sharded engine, executing every command the engine
// returns (fetch/evict completions re-enter from the same thread, as
// the real IO workers do).  Quota borrows, reclaims and ownership
// transfers between tenants must never lose or double-count a byte:
// the quiescence audit reconciles the ledger against the engine's
// tier_used exactly.
TEST(ServeConcurrency, QuotaConservationUnderConcurrentShards) {
  constexpr int kTenants = 4;
  constexpr int kBlocks = 96;
  constexpr int kTasksPerTenant = 150;
  constexpr std::uint64_t kBlockBytes = 1 * MiB;

  rt::ShardedEngine::Config sc;
  sc.num_pes = kTenants;
  sc.num_shards = 2;
  sc.fast_capacity = 24 * MiB; // heavy eviction pressure
  rt::ShardedEngine inner(sc);

  ServeConfig cfg;
  cfg.tenants.push_back(tenant(0, "slo", QosClass::LatencySLO, {0.4}));
  for (TenantId t = 1; t < kTenants; ++t) {
    cfg.tenants.push_back(
        tenant(t, "be-" + std::to_string(t), QosClass::BestEffort, {0.15}));
  }
  TenantEngine te(inner, cfg);

  for (ooc::BlockId b = 0; b < kBlocks; ++b) {
    te.add_block(b, kBlockBytes);
  }

  auto drain = [&](std::vector<ooc::Command> cmds) {
    std::deque<ooc::Command> work(cmds.begin(), cmds.end());
    while (!work.empty()) {
      const ooc::Command c = work.front();
      work.pop_front();
      std::vector<ooc::Command> next;
      switch (c.kind) {
        case ooc::Command::Kind::Fetch:
          next = te.on_fetch_complete(c.block);
          break;
        case ooc::Command::Kind::Evict:
          next = te.on_evict_complete(c.block);
          break;
        case ooc::Command::Kind::Run:
          next = te.on_task_complete(c.task, c.pe);
          break;
      }
      work.insert(work.end(), next.begin(), next.end());
    }
  };

  std::atomic<bool> stop_reader{false};
  std::thread reader([&] {
    // Concurrent observers must never crash or deadlock against the
    // event stream (off-quiescence audits check capacity only).
    while (!stop_reader.load()) {
      (void)te.snapshots();
      (void)te.audit_invariants(false);
      std::ostringstream os;
      te.write_json(os);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < kTenants; ++t) {
    workers.emplace_back([&, t] {
      for (int r = 0; r < kTasksPerTenant; ++r) {
        ooc::TaskDesc d;
        d.id = static_cast<ooc::TaskId>(1 + t * 100000 + r);
        d.pe = t;
        d.tenant = static_cast<std::uint32_t>(t);
        // Overlapping footprints: ownership of shared blocks migrates
        // between tenants as their fetches interleave.
        const int b0 = (t * 13 + r * 7) % kBlocks;
        int b1 = (r * 3 + t) % kBlocks;
        if (b1 == b0) b1 = (b1 + 1) % kBlocks;
        d.deps = {{static_cast<ooc::BlockId>(b0),
                   ooc::AccessMode::ReadWrite},
                  {static_cast<ooc::BlockId>(b1),
                   ooc::AccessMode::ReadOnly}};
        drain(te.on_task_arrived(d));
      }
    });
  }
  for (auto& th : workers) th.join();
  stop_reader.store(true);
  reader.join();

  ASSERT_TRUE(te.quiescent());
  EXPECT_EQ(te.audit_invariants(/*at_quiescence=*/true),
            std::vector<std::string>{});

  std::uint64_t completed = 0, admitted = 0;
  for (const auto& s : te.snapshots()) {
    completed += s.completed;
    admitted += s.admitted;
    EXPECT_EQ(s.completed, s.submitted) << s.desc.name;
  }
  EXPECT_EQ(completed, static_cast<std::uint64_t>(kTenants) *
                           kTasksPerTenant);
  EXPECT_EQ(admitted, completed);

  // Removing every block must return all balances to zero.
  for (ooc::BlockId b = 0; b < kBlocks; ++b) te.remove_block(b);
  EXPECT_EQ(te.audit_invariants(true), std::vector<std::string>{});
  EXPECT_EQ(te.tier_used(0), 0u);
}

// ---------------------------------------------------------------------
// Single-tenant equivalence
// ---------------------------------------------------------------------

// Registering exactly one tenant must not change a single stat: no
// advisor is installed, nothing can borrow, admission always admits
// and priority dispatch is inert, so the DES produces bit-equal
// virtual times and counters with tenancy on and off.
TEST(ServeEquivalence, SingleTenantIsByteIdentical) {
  const sim::StencilWorkload w({.total_bytes = 128 * MiB,
                                .num_chares = 32,
                                .num_pes = 8,
                                .iterations = 3});
  auto base = [] {
    sim::SimConfig c;
    c.model = hw::knl_flat_all_to_all();
    c.model.num_pes = 8;
    c.strategy = ooc::Strategy::MultiIo;
    c.fast_capacity = 48 * MiB;
    return c;
  };

  sim::SimExecutor plain(base());
  const sim::SimResult r0 = plain.run(w);

  sim::SimConfig cfg = base();
  cfg.serve.tenants.push_back(
      tenant(0, "only", QosClass::LatencySLO, {1.0}));
  sim::SimExecutor served(cfg);
  const sim::SimResult r1 = served.run(w);

  EXPECT_EQ(r0.total_time, r1.total_time);
  EXPECT_EQ(r0.tasks_completed, r1.tasks_completed);
  EXPECT_EQ(r0.iteration_times, r1.iteration_times);
  EXPECT_EQ(r0.policy.tasks_run, r1.policy.tasks_run);
  EXPECT_EQ(r0.policy.fetches, r1.policy.fetches);
  EXPECT_EQ(r0.policy.fetch_bytes, r1.policy.fetch_bytes);
  EXPECT_EQ(r0.policy.evicts, r1.policy.evicts);
  EXPECT_EQ(r0.policy.evict_bytes, r1.policy.evict_bytes);
  EXPECT_EQ(r0.policy.fetch_dedup_hits, r1.policy.fetch_dedup_hits);
  EXPECT_EQ(r0.policy.lru_reclaims, r1.policy.lru_reclaims);

  // And the decorator's own ledger reconciles: one tenant completed
  // everything, no defers, no borrows, no displacements.
  const auto snaps = served.tenancy()->snapshots();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].completed, r1.tasks_completed);
  EXPECT_EQ(snaps[0].deferred, 0u);
  EXPECT_EQ(snaps[0].borrows, 0u);
  EXPECT_EQ(snaps[0].displaced, 0u);
}

// The sim's tenancy path must also hold the serving bound end-to-end
// at bench scale — bench/serve_qos --check covers that in CI; here a
// scaled-down two-tenant run asserts the pieces stay wired: defers
// happen, displacements happen, and everyone finishes.
TEST(ServeEquivalence, TwoTenantSimRunsToQuiescenceWithQosMachinery) {
  const sim::StencilWorkload w({.total_bytes = 96 * MiB,
                                .num_chares = 32,
                                .num_pes = 8,
                                .iterations = 3});
  sim::SimConfig cfg;
  cfg.model = hw::knl_flat_all_to_all();
  cfg.model.num_pes = 8;
  cfg.strategy = ooc::Strategy::MultiIo;
  cfg.fast_capacity = 32 * MiB;
  cfg.io_threads = 1;
  // StencilWorkload tags every task tenant 0; register a second idle
  // tenant so the full machinery (advisor, ranks, quota gate) engages.
  cfg.serve.tenants.push_back(
      tenant(0, "app", QosClass::BestEffort, {0.5}));
  cfg.serve.tenants.push_back(
      tenant(1, "idle", QosClass::LatencySLO, {0.25}));
  sim::SimExecutor ex(cfg);
  const auto r = ex.run(w);
  EXPECT_EQ(r.tasks_completed, 3u * 32);
  const auto snaps = ex.tenancy()->snapshots();
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[0].completed, 3u * 32);
  EXPECT_EQ(snaps[1].submitted, 0u);
}

} // namespace
} // namespace hmr::serve
