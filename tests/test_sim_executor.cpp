// Integration tests for the discrete-event executor: end-to-end runs of
// the paper's workloads at reduced scale, invariants across strategies,
// and the qualitative orderings the paper reports.

#include <gtest/gtest.h>

#include "sim/matmul_workload.hpp"
#include "sim/sim_executor.hpp"
#include "sim/stencil_workload.hpp"
#include "sim/synthetic_workload.hpp"
#include "util/units.hpp"

namespace hmr::sim {
namespace {

SimConfig base_config(ooc::Strategy s, int pes = 8,
                      std::uint64_t fast_cap = 64 * MiB) {
  SimConfig c;
  c.model = hw::knl_flat_all_to_all();
  c.model.num_pes = pes;
  c.strategy = s;
  c.fast_capacity = fast_cap;
  return c;
}

StencilWorkload small_stencil(int pes = 8, int iters = 2) {
  return StencilWorkload({.total_bytes = 128 * MiB,
                          .num_chares = pes * 4,
                          .num_pes = pes,
                          .iterations = iters});
}

class AllStrategies : public ::testing::TestWithParam<ooc::Strategy> {};

TEST_P(AllStrategies, StencilRunsToCompletion) {
  const auto w = small_stencil();
  SimExecutor ex(base_config(GetParam()));
  const auto r = ex.run(w);
  EXPECT_EQ(r.tasks_completed, 2u * 32);
  EXPECT_EQ(r.iteration_times.size(), 2u);
  EXPECT_GT(r.total_time, 0.0);
  for (double t : r.iteration_times) EXPECT_GT(t, 0.0);
}

TEST_P(AllStrategies, VirtualTimeIsDeterministic) {
  const auto w = small_stencil();
  SimExecutor a(base_config(GetParam()));
  SimExecutor b(base_config(GetParam()));
  EXPECT_DOUBLE_EQ(a.run(w).total_time, b.run(w).total_time);
}

TEST_P(AllStrategies, SyntheticWithSharingCompletes) {
  SyntheticWorkload::Params p;
  p.num_blocks = 64;
  p.block_bytes = 4 * MiB;
  p.tasks_per_iteration = 96;
  p.deps_per_task = 3;
  p.reuse = 0.6;
  p.num_pes = 8;
  p.num_iterations = 2;
  SyntheticWorkload w(p);
  SimExecutor ex(base_config(GetParam()));
  const auto r = ex.run(w);
  EXPECT_EQ(r.tasks_completed, 192u);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, AllStrategies,
    ::testing::Values(ooc::Strategy::Naive, ooc::Strategy::DdrOnly,
                      ooc::Strategy::SingleIo, ooc::Strategy::SyncNoIo,
                      ooc::Strategy::MultiIo),
    [](const auto& pi) { return ooc::strategy_name(pi.param); });

TEST(SimExecutor, HbmOnlyNeedsFittingWorkingSet) {
  // Working set fits: valid.
  const auto w = small_stencil();
  auto cfg = base_config(ooc::Strategy::HbmOnly, 8,
                         /*fast_cap=*/512 * MiB);
  SimExecutor ex(cfg);
  const auto r = ex.run(w);
  EXPECT_EQ(r.tasks_completed, 64u);
}

TEST(SimExecutor, Fig2Ordering_HbmBeatsDdrBy3x) {
  // The 3x compute-kernel gap of Fig 2 is a 64-PE bandwidth-sharing
  // effect: run at the paper's PE count.
  StencilWorkload w({.total_bytes = 128 * MiB,
                     .num_chares = 256,
                     .num_pes = 64,
                     .iterations = 2});
  auto hbm_cfg = base_config(ooc::Strategy::HbmOnly, 64, 512 * MiB);
  auto ddr_cfg = base_config(ooc::Strategy::DdrOnly, 64, 512 * MiB);
  const double t_hbm = SimExecutor(hbm_cfg).run(w).total_time;
  const double t_ddr = SimExecutor(ddr_cfg).run(w).total_time;
  EXPECT_NEAR(t_ddr / t_hbm, 3.0, 0.6);
}

TEST(SimExecutor, OutOfCoreOrderingMatchesFig8) {
  // Working set 2x the fast tier, independent blocks (stencil), paper
  // PE count: the ordering is MultiIO < SyncNoIO < Naive < SingleIO
  // in time (Fig 8 reports the inverse as speedup).
  StencilWorkload w({.total_bytes = 128 * MiB,
                     .num_chares = 256,
                     .num_pes = 64,
                     .iterations = 3});
  const std::uint64_t cap = 64 * MiB;
  auto run = [&](ooc::Strategy s) {
    return SimExecutor(base_config(s, 64, cap)).run(w).total_time;
  };
  const double naive = run(ooc::Strategy::Naive);
  const double multi = run(ooc::Strategy::MultiIo);
  const double sync = run(ooc::Strategy::SyncNoIo);
  const double single = run(ooc::Strategy::SingleIo);
  EXPECT_LT(multi, naive);  // prefetch wins
  EXPECT_LT(multi, sync);   // async beats sync
  EXPECT_GT(single, naive); // single IO thread is a net loss here
}

TEST(SimExecutor, MatmulReuseMakesSingleIoCompetitive) {
  // Fig 9: with heavy read-only reuse the single IO thread is about as
  // good as multiple IO threads.
  MatmulWorkload w({.n = 4096, .grid = 16, .num_pes = 16});
  // Room for a couple of row waves of panels.
  const std::uint64_t cap = 40 * w.panel_bytes();
  auto run = [&](ooc::Strategy s) {
    return SimExecutor(base_config(s, 16, cap)).run(w).total_time;
  };
  const double multi = run(ooc::Strategy::MultiIo);
  const double single = run(ooc::Strategy::SingleIo);
  EXPECT_LT(single / multi, 1.35);
}

TEST(SimExecutor, PrefetchReducesFetchTrafficUnderReuse) {
  MatmulWorkload w({.n = 512, .grid = 8, .num_pes = 8});
  SimExecutor ex(base_config(ooc::Strategy::MultiIo, 8, 16 * MiB));
  const auto r = ex.run(w);
  // 64 tasks x 3 deps = 192 claims, but panel sharing must dedup or
  // chain most of them: far fewer actual migrations.
  EXPECT_EQ(r.tasks_completed, 64u);
  EXPECT_LT(r.policy.fetches, 192u);
}

TEST(SimExecutor, SyncStrategyChargesWorkers) {
  const auto w = small_stencil();
  SimExecutor sync_ex(base_config(ooc::Strategy::SyncNoIo));
  SimExecutor multi_ex(base_config(ooc::Strategy::MultiIo));
  const auto rs = sync_ex.run(w);
  const auto rm = multi_ex.run(w);
  EXPECT_GT(rs.worker_transfer_seconds, 0.0);
  EXPECT_EQ(rm.worker_transfer_seconds, 0.0); // fully async
}

TEST(SimExecutor, TraceAccountsForAllLanes) {
  auto cfg = base_config(ooc::Strategy::MultiIo);
  cfg.trace = true;
  SimExecutor ex(cfg);
  const auto w = small_stencil();
  const auto r = ex.run(w);
  const auto s = ex.tracer().summarize(/*worker_lanes=*/8);
  EXPECT_GT(s.total_of(trace::Category::Compute), 0.0);
  // Compute lane-seconds from the tracer must match the result stats.
  EXPECT_NEAR(s.total_of(trace::Category::Compute), r.compute_lane_seconds,
              1e-9 * r.compute_lane_seconds);
  // IO lanes carry the prefetch/evict load.
  const auto all = ex.tracer().summarize();
  EXPECT_GT(all.total_of(trace::Category::Prefetch), 0.0);
  EXPECT_GT(all.total_of(trace::Category::Evict), 0.0);
}

TEST(SimExecutor, NocopyWriteonlySpeedsUpWriteHeavyWork) {
  SyntheticWorkload::Params p;
  p.num_blocks = 64;
  p.block_bytes = 8 * MiB;
  p.tasks_per_iteration = 64;
  p.deps_per_task = 2;
  p.readonly_frac = 0.0;
  p.num_pes = 8;
  SyntheticWorkload w(p);
  // Mark all deps WriteOnly via a copy of the tasks is not possible
  // through the Workload interface; instead compare a config where the
  // optimization is off vs on using ReadWrite (no effect) as control.
  auto cfg_off = base_config(ooc::Strategy::MultiIo, 8, 32 * MiB);
  auto cfg_on = cfg_off;
  cfg_on.writeonly_nocopy = true;
  const double t_off = SimExecutor(cfg_off).run(w).total_time;
  const double t_on = SimExecutor(cfg_on).run(w).total_time;
  // ReadWrite deps: optimization must not change anything.
  EXPECT_DOUBLE_EQ(t_off, t_on);
}

TEST(SimExecutor, LazyEvictionNeverSlower) {
  MatmulWorkload w({.n = 512, .grid = 8, .num_pes = 8});
  auto eager = base_config(ooc::Strategy::MultiIo, 8, 32 * MiB);
  auto lazy = eager;
  lazy.eager_evict = false;
  const auto re = SimExecutor(eager).run(w);
  const auto rl = SimExecutor(lazy).run(w);
  EXPECT_LE(rl.total_time, re.total_time * 1.001);
  EXPECT_LE(rl.policy.fetch_bytes, re.policy.fetch_bytes);
}

TEST(SimExecutor, IoThreadSubgroupsStillComplete) {
  const auto w = small_stencil();
  for (int k : {1, 2, 4}) {
    auto cfg = base_config(ooc::Strategy::MultiIo);
    cfg.io_threads = k;
    SimExecutor ex(cfg);
    EXPECT_EQ(ex.run(w).tasks_completed, 64u) << "io_threads=" << k;
  }
}

TEST(SimExecutor, RunTwiceDies) {
  SimExecutor ex(base_config(ooc::Strategy::Naive));
  const auto w = small_stencil();
  (void)ex.run(w);
  EXPECT_DEATH((void)ex.run(w), "only be called once");
}

TEST(SimExecutor, AdaptiveRequiresMovementStrategy) {
  auto cfg = base_config(ooc::Strategy::Naive);
  cfg.adaptive = true;
  EXPECT_DEATH({ SimExecutor ex(cfg); }, "movement strategy");
}

TEST(SimExecutor, AdaptiveStationaryStencilMatchesFixed) {
  // On a stationary workload the governor has nothing to fix: an
  // adaptive run from the paper's default configuration must track the
  // fixed MultiIo run closely.
  const auto w = small_stencil(8, /*iters=*/4);
  const auto fixed = SimExecutor(base_config(ooc::Strategy::MultiIo)).run(w);
  auto cfg = base_config(ooc::Strategy::MultiIo);
  cfg.adaptive = true;
  SimExecutor ex(cfg);
  const auto r = ex.run(w);
  EXPECT_EQ(r.tasks_completed, fixed.tasks_completed);
  EXPECT_LE(r.total_time, fixed.total_time * 1.05);
  ASSERT_NE(ex.governor(), nullptr);
  // One governor step per interior iteration boundary.
  EXPECT_EQ(ex.governor()->phases_observed(), 3);
}

TEST(SimExecutor, AdaptivePhaseFlipSwitchesEvictionOnline) {
  // Streaming first half, heavy read-mostly reuse of a small window in
  // the second: the refetch ratio jumps at the flip and the governor
  // must move off eager eviction mid-run.
  SyntheticWorkload::Params p;
  p.num_blocks = 96;
  p.block_bytes = 4 * MiB; // 384 MiB working set vs 64 MiB fast tier
  p.tasks_per_iteration = 64;
  p.deps_per_task = 2;
  p.num_pes = 8;
  p.num_iterations = 8;
  p.readonly_frac = 0.8;
  p.reuse = 0.0;
  p.flip_iteration = 4;
  p.reuse_after = 0.9;
  p.window_after = 8;
  const SyntheticWorkload w(p);
  auto cfg = base_config(ooc::Strategy::MultiIo);
  cfg.adaptive = true;
  cfg.profiler_cfg.top_k = 128;
  SimExecutor ex(cfg);
  const auto r = ex.run(w);
  EXPECT_EQ(r.tasks_completed, 8u * 64u);
  EXPECT_GE(r.governor_switches, 1u);
  EXPECT_FALSE(r.final_eager_evict);
  EXPECT_GT(r.policy.lru_reclaims, 0u);
  ASSERT_NE(ex.profiler(), nullptr);
  EXPECT_LE(ex.profiler()->tracked(), cfg.profiler_cfg.top_k);
}

TEST(SimExecutor, AdaptiveRunIsDeterministic) {
  SyntheticWorkload::Params p;
  p.num_blocks = 48;
  p.block_bytes = 4 * MiB;
  p.tasks_per_iteration = 32;
  p.num_pes = 8;
  p.num_iterations = 4;
  p.flip_iteration = 2;
  p.reuse_after = 0.8;
  const SyntheticWorkload w(p);
  auto cfg = base_config(ooc::Strategy::MultiIo);
  cfg.adaptive = true;
  SimExecutor a(cfg);
  SimExecutor b(cfg);
  const auto ra = a.run(w);
  const auto rb = b.run(w);
  EXPECT_DOUBLE_EQ(ra.total_time, rb.total_time);
  EXPECT_EQ(ra.governor_switches, rb.governor_switches);
  EXPECT_EQ(ra.final_eager_evict, rb.final_eager_evict);
}

} // namespace
} // namespace hmr::sim
