// Tests for the telemetry subsystem: the lock-free event rings under
// the tracer, the metrics registry (log2 histograms, Prometheus/JSON
// writers), Perfetto export with causal task flows, the block flight
// recorder, and the bridges that keep the registry in lockstep with
// PolicyEngine::Stats in both executors.

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "rt/io_handle.hpp"
#include "rt/runtime.hpp"
#include "sim/sim_executor.hpp"
#include "sim/stencil_workload.hpp"
#include "telemetry/bridge.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/perfetto.hpp"
#include "telemetry/ring.hpp"
#include "trace/tracer.hpp"
#include "util/units.hpp"

namespace hmr {
namespace {

using telemetry::EventRing;
using telemetry::Histogram;
using telemetry::LaneRings;
using telemetry::MetricsRegistry;
using trace::Category;
using trace::Interval;

// ---------------------------------------------------------------- rings

TEST(TelemetryRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(EventRing<int>(1).capacity(), 8u); // minimum
  EXPECT_EQ(EventRing<int>(8).capacity(), 8u);
  EXPECT_EQ(EventRing<int>(10).capacity(), 16u);
  EXPECT_EQ(EventRing<int>(1 << 14).capacity(), std::size_t{1} << 14);
}

TEST(TelemetryRing, FifoAndOverflowDropAccounting) {
  EventRing<int> ring(16);
  for (int i = 0; i < 16; ++i) EXPECT_TRUE(ring.try_push(i));
  // Full: further pushes are dropped and counted, never blocking.
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(ring.try_push(100 + i));
  EXPECT_EQ(ring.dropped(), 5u);

  std::vector<int> out;
  EXPECT_EQ(ring.drain(out), 16u);
  ASSERT_EQ(out.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[i], i); // FIFO order

  // Drain freed the slots: pushes succeed again, drop count is
  // monotonic.
  EXPECT_TRUE(ring.try_push(42));
  out.clear();
  EXPECT_EQ(ring.drain(out), 1u);
  EXPECT_EQ(out[0], 42);
  EXPECT_EQ(ring.dropped(), 5u);
}

TEST(TelemetryRing, ConcurrentProducersVsDrainLoseNothingButDrops) {
  // Several producers hammer one small ring while a consumer drains
  // concurrently; afterwards every event was either drained exactly
  // once or counted as dropped.
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 5000;
  EventRing<std::uint64_t> ring(256);

  std::vector<std::uint64_t> drained;
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    while (!done.load(std::memory_order_acquire)) ring.drain(drained);
    ring.drain(drained); // final sweep
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        ring.try_push(static_cast<std::uint64_t>(p) * kPerProducer + i);
      }
    });
  }
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_EQ(drained.size() + ring.dropped(), kProducers * kPerProducer);

  // No duplicates, every value valid, and each producer's surviving
  // events appear in its push order.
  std::vector<std::uint64_t> last(kProducers, 0);
  std::vector<bool> any(kProducers, false);
  std::vector<char> seen(kProducers * kPerProducer, 0);
  for (const std::uint64_t v : drained) {
    ASSERT_LT(v, kProducers * kPerProducer);
    ASSERT_FALSE(seen[v]) << "event drained twice";
    seen[v] = 1;
    const auto p = static_cast<std::size_t>(v / kPerProducer);
    if (any[p]) {
      ASSERT_GT(v, last[p]) << "per-producer order broken";
    }
    any[p] = true;
    last[p] = v;
  }
}

TEST(TelemetryRing, LaneRingsCreateOnFirstUseAndAggregate) {
  LaneRings<int> lanes(8);
  EXPECT_EQ(lanes.lane(-1), nullptr);
  EXPECT_EQ(lanes.lane(LaneRings<int>::kMaxLanes), nullptr);
  EXPECT_EQ(lanes.peek(3), nullptr); // peek never creates

  auto* r3 = lanes.lane(3);
  ASSERT_NE(r3, nullptr);
  EXPECT_EQ(lanes.lane(3), r3); // stable across calls
  EXPECT_EQ(lanes.peek(3), r3);

  lanes.lane(0)->try_push(10);
  r3->try_push(30);
  for (int i = 0; i < 20; ++i) lanes.lane(5)->try_push(i); // 8 fit
  EXPECT_EQ(lanes.dropped(), 12u);

  std::vector<int> out;
  EXPECT_EQ(lanes.drain_all(out), 10u); // 1 + 1 + 8
}

// --------------------------------------------------------------- tracer

Interval make_iv(std::int32_t lane, Category cat, double start,
                 double end, std::uint64_t task = 0,
                 std::uint32_t src = 0, std::uint32_t dst = 0,
                 std::uint64_t bytes = 0) {
  Interval iv;
  iv.lane = lane;
  iv.cat = cat;
  iv.start = start;
  iv.end = end;
  iv.task = task;
  iv.src_tier = src;
  iv.dst_tier = dst;
  iv.bytes = bytes;
  return iv;
}

std::vector<Interval> mixed_intervals() {
  std::vector<Interval> ivs;
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> lane(0, 5);
  std::uniform_real_distribution<double> len(1e-4, 1e-2);
  double t = 0;
  for (int i = 0; i < 200; ++i) {
    const double d = len(rng);
    const auto cat = static_cast<Category>(i % 5); // no Idle
    ivs.push_back(make_iv(lane(rng), cat, t, t + d,
                          cat == Category::Compute ? 1 + i % 17 : 0,
                          /*src=*/1, /*dst=*/0,
                          cat == Category::Prefetch ? 4096u : 0u));
    t += d * 0.5;
  }
  return ivs;
}

TEST(TelemetryTracer, RingAndSerialPathsAgree) {
  trace::Tracer::Options serial_opt;
  serial_opt.serial = true;
  trace::Tracer ring_tracer(true);
  trace::Tracer serial_tracer(true, serial_opt);

  for (const auto& iv : mixed_intervals()) {
    ring_tracer.record_migration(iv.lane, iv.cat, iv.start, iv.end,
                                 iv.task, iv.src_tier, iv.dst_tier,
                                 iv.bytes);
    serial_tracer.record_migration(iv.lane, iv.cat, iv.start, iv.end,
                                   iv.task, iv.src_tier, iv.dst_tier,
                                   iv.bytes);
  }
  EXPECT_EQ(ring_tracer.dropped(), 0u);

  const auto a = ring_tracer.intervals();
  const auto b = serial_tracer.intervals();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].lane, b[i].lane);
    EXPECT_EQ(static_cast<int>(a[i].cat), static_cast<int>(b[i].cat));
    EXPECT_DOUBLE_EQ(a[i].start, b[i].start);
    EXPECT_DOUBLE_EQ(a[i].end, b[i].end);
    EXPECT_EQ(a[i].task, b[i].task);
    EXPECT_EQ(a[i].bytes, b[i].bytes);
  }

  const auto sa = ring_tracer.summarize();
  const auto sb = serial_tracer.summarize();
  for (int c = 0; c < 6; ++c) {
    const auto cat = static_cast<Category>(c);
    EXPECT_DOUBLE_EQ(sa.total_of(cat), sb.total_of(cat));
    EXPECT_EQ(sa.count_of(cat), sb.count_of(cat));
  }
  EXPECT_EQ(sa.migration_between(1, 0).bytes,
            sb.migration_between(1, 0).bytes);
}

TEST(TelemetryTracer, FullRingDropsAndCountsWithoutBlocking) {
  trace::Tracer::Options opt;
  opt.ring_capacity = 8;
  trace::Tracer t(true, opt);
  for (int i = 0; i < 100; ++i) {
    t.record(0, Category::Compute, i, i + 0.5, 1);
  }
  EXPECT_GT(t.dropped(), 0u);
  EXPECT_EQ(t.intervals().size() + t.dropped(), 100u);
  // dropped() is monotonic across clear().
  const auto before = t.dropped();
  t.clear();
  EXPECT_EQ(t.dropped(), before);
}

TEST(TelemetryTracer, SerialEnvKnobForcesMutexPath) {
  // HMR_TRACE_SERIAL=1 must defeat the ring even when Options ask for
  // a tiny capacity: the serial path never drops.
  ASSERT_EQ(::setenv("HMR_TRACE_SERIAL", "1", 1), 0);
  {
    trace::Tracer::Options opt;
    opt.ring_capacity = 8;
    trace::Tracer t(true, opt);
    for (int i = 0; i < 100; ++i) {
      t.record(0, Category::Compute, i, i + 0.5);
    }
    EXPECT_EQ(t.dropped(), 0u);
    EXPECT_EQ(t.intervals().size(), 100u);
  }
  ::unsetenv("HMR_TRACE_SERIAL");
}

TEST(TelemetryTracer, ConcurrentRecordVsDrain) {
  // Recorders on their own lanes race readers that drain mid-flight;
  // the final log must hold exactly recorded - dropped intervals.
  trace::Tracer t(true);
  constexpr int kLanes = 4;
  constexpr int kEach = 4000;
  std::vector<std::thread> rec;
  for (int l = 0; l < kLanes; ++l) {
    rec.emplace_back([&t, l] {
      for (int i = 0; i < kEach; ++i) {
        t.record(l, Category::Compute, i, i + 0.5,
                 static_cast<std::uint64_t>(i + 1));
      }
    });
  }
  // Concurrent readers force ring drains while producers run.
  std::size_t mid = 0;
  for (int i = 0; i < 20; ++i) mid = t.intervals().size();
  EXPECT_LE(mid, static_cast<std::size_t>(kLanes) * kEach);
  for (auto& th : rec) th.join();
  EXPECT_EQ(t.intervals().size() + t.dropped(),
            static_cast<std::size_t>(kLanes) * kEach);
}

// -------------------------------------------------------------- metrics

TEST(TelemetryMetrics, HistogramBucketBoundaries) {
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_of(7), 3);
  EXPECT_EQ(Histogram::bucket_of(8), 4);
  EXPECT_EQ(Histogram::bucket_of(~0ull), 64);

  EXPECT_EQ(Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper(2), 3u);
  EXPECT_EQ(Histogram::bucket_upper(3), 7u);
  EXPECT_EQ(Histogram::bucket_upper(64), ~0ull);

  // Every bucket's upper bound is the largest value that maps to it.
  for (int i = 1; i < 64; ++i) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_upper(i)), i);
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_upper(i) + 1), i + 1);
  }

  Histogram h;
  for (const std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull}) {
    h.observe(v);
  }
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 10u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(3), 1u);
}

TEST(TelemetryMetrics, RegistryFindOrCreateIsStable) {
  MetricsRegistry reg;
  auto& c1 = reg.counter("hmr_x_total");
  auto& c2 = reg.counter("hmr_x_total");
  EXPECT_EQ(&c1, &c2);
  // Same name, different labels: distinct instruments.
  auto& s0 = reg.counter("hmr_y_total", "shard=\"0\"");
  auto& s1 = reg.counter("hmr_y_total", "shard=\"1\"");
  EXPECT_NE(&s0, &s1);

  c1.add(3);
  s0.set(7);
  s1.set(9);
  reg.gauge("hmr_g").set(2.5);
  reg.histogram("hmr_h_ns").observe(5);

  const auto snap = reg.snapshot();
  ASSERT_NE(snap.counter("hmr_x_total"), nullptr);
  EXPECT_EQ(snap.counter("hmr_x_total")->value, 3u);
  ASSERT_NE(snap.counter("hmr_y_total", "shard=\"1\""), nullptr);
  EXPECT_EQ(snap.counter("hmr_y_total", "shard=\"1\"")->value, 9u);
  EXPECT_EQ(snap.counter("hmr_y_total"), nullptr); // labels must match
  ASSERT_NE(snap.gauge("hmr_g"), nullptr);
  EXPECT_DOUBLE_EQ(snap.gauge("hmr_g")->value, 2.5);
  ASSERT_NE(snap.histogram("hmr_h_ns"), nullptr);
  EXPECT_EQ(snap.histogram("hmr_h_ns")->count, 1u);
  EXPECT_GE(reg.uptime(), 0.0);
}

bool has_line(const std::string& text, const std::string& line) {
  std::istringstream is(text);
  std::string l;
  while (std::getline(is, l)) {
    if (l == line) return true;
  }
  return false;
}

std::size_t count_of(const std::string& text, const std::string& pat) {
  std::size_t n = 0;
  for (std::size_t pos = text.find(pat); pos != std::string::npos;
       pos = text.find(pat, pos + pat.size())) {
    ++n;
  }
  return n;
}

TEST(TelemetryMetrics, PrometheusExposition) {
  MetricsRegistry reg;
  reg.counter("hmr_foo_total", "", "foo help").add(7);
  reg.counter("hmr_sharded_total", "shard=\"0\"").add(1);
  reg.counter("hmr_sharded_total", "shard=\"1\"").add(2);
  reg.gauge("hmr_bar", "", "bar help").set(2.5);
  auto& h = reg.histogram("hmr_lat_ns", "", "latency");
  for (const std::uint64_t v : {0ull, 1ull, 3ull, 4ull}) h.observe(v);
  auto& hl = reg.histogram("hmr_lab_ns", "shard=\"1\"");
  hl.observe(0);

  std::ostringstream os;
  MetricsRegistry::write_prometheus(os, reg.snapshot());
  const std::string text = os.str();

  EXPECT_TRUE(has_line(text, "# HELP hmr_foo_total foo help"));
  EXPECT_TRUE(has_line(text, "# TYPE hmr_foo_total counter"));
  EXPECT_TRUE(has_line(text, "hmr_foo_total 7"));
  // One preamble shared by both labeled series.
  EXPECT_EQ(count_of(text, "# TYPE hmr_sharded_total counter"), 1u);
  EXPECT_TRUE(has_line(text, "hmr_sharded_total{shard=\"0\"} 1"));
  EXPECT_TRUE(has_line(text, "hmr_sharded_total{shard=\"1\"} 2"));
  EXPECT_TRUE(has_line(text, "# TYPE hmr_bar gauge"));
  EXPECT_TRUE(has_line(text, "hmr_bar 2.5"));

  // Cumulative buckets with log2 le bounds; +Inf carries the count.
  EXPECT_TRUE(has_line(text, "# TYPE hmr_lat_ns histogram"));
  EXPECT_TRUE(has_line(text, "hmr_lat_ns_bucket{le=\"0\"} 1"));
  EXPECT_TRUE(has_line(text, "hmr_lat_ns_bucket{le=\"1\"} 2"));
  EXPECT_TRUE(has_line(text, "hmr_lat_ns_bucket{le=\"3\"} 3"));
  EXPECT_TRUE(has_line(text, "hmr_lat_ns_bucket{le=\"7\"} 4"));
  EXPECT_TRUE(has_line(text, "hmr_lat_ns_bucket{le=\"+Inf\"} 4"));
  EXPECT_TRUE(has_line(text, "hmr_lat_ns_sum 8"));
  EXPECT_TRUE(has_line(text, "hmr_lat_ns_count 4"));
  // Labeled histogram series merge the le label after the labels.
  EXPECT_TRUE(has_line(text, "hmr_lab_ns_bucket{shard=\"1\",le=\"0\"} 1"));
  EXPECT_TRUE(has_line(text, "hmr_lab_ns_sum{shard=\"1\"} 0"));
  EXPECT_TRUE(has_line(text, "hmr_lab_ns_count{shard=\"1\"} 1"));
}

TEST(TelemetryMetrics, PromLabelEscapesValues) {
  EXPECT_EQ(telemetry::prom_label("app", "plain"), "app=\"plain\"");
  EXPECT_EQ(telemetry::prom_label("app", "a\"b\\c\nd"),
            "app=\"a\\\"b\\\\c\\nd\"");
  // The result drops into an exposition line verbatim.
  MetricsRegistry reg;
  reg.counter("hmr_esc_total", telemetry::prom_label("cfg", "x\"y"))
      .add(3);
  std::ostringstream os;
  MetricsRegistry::write_prometheus(os, reg.snapshot());
  EXPECT_TRUE(has_line(os.str(), "hmr_esc_total{cfg=\"x\\\"y\"} 3"));
}

TEST(TelemetryMetrics, HelpTextEscaping) {
  MetricsRegistry reg;
  reg.counter("hmr_h_total", "", "line one\nback\\slash").add(1);
  std::ostringstream os;
  MetricsRegistry::write_prometheus(os, reg.snapshot());
  EXPECT_TRUE(has_line(
      os.str(), "# HELP hmr_h_total line one\\nback\\\\slash"));
}

TEST(TelemetryMetrics, MetricNameValidation) {
  EXPECT_TRUE(telemetry::valid_metric_name("hmr_ok_total"));
  EXPECT_TRUE(telemetry::valid_metric_name("ns:sub_total"));
  EXPECT_TRUE(telemetry::valid_metric_name("_x9"));
  EXPECT_FALSE(telemetry::valid_metric_name(""));
  EXPECT_FALSE(telemetry::valid_metric_name("9starts_with_digit"));
  EXPECT_FALSE(telemetry::valid_metric_name("has-dash"));
  EXPECT_FALSE(telemetry::valid_metric_name("has space"));
}

TEST(TelemetryMetricsDeathTest, RejectsMalformedRegistrations) {
  MetricsRegistry reg;
  EXPECT_DEATH(reg.counter("bad name"), "invalid metric name");
  EXPECT_DEATH(reg.counter("hmr_ok", "a=\"b\nc\""), "raw newline");
  EXPECT_DEATH(telemetry::prom_label("bad-key", "v"),
               "invalid label key");
}

TEST(TelemetryTracer, SummaryCarriesRingDropCount) {
  trace::Tracer::Options opt;
  opt.ring_capacity = 8;
  trace::Tracer t(true, opt);
  for (int i = 0; i < 50; ++i) {
    t.record(0, Category::Compute, i, i + 0.5, 1);
  }
  const auto s = t.summarize();
  EXPECT_GT(s.dropped, 0u);
  EXPECT_EQ(s.dropped, t.dropped());
}

TEST(TelemetryMetrics, JsonWriterIsStructurallySound) {
  MetricsRegistry reg;
  reg.counter("hmr_a_total").add(1);
  reg.gauge("hmr_b", "level=\"0\"").set(0.25);
  reg.histogram("hmr_c_ns").observe(1000);

  std::ostringstream os;
  MetricsRegistry::write_json(os, reg.snapshot());
  const std::string js = os.str();

  EXPECT_EQ(js.front(), '{');
  EXPECT_EQ(count_of(js, "{"), count_of(js, "}"));
  EXPECT_EQ(count_of(js, "["), count_of(js, "]"));
  EXPECT_EQ(count_of(js, "\"") % 2, 0u);
  EXPECT_EQ(count_of(js, "\"counters\":["), 1u);
  EXPECT_EQ(count_of(js, "\"gauges\":["), 1u);
  EXPECT_EQ(count_of(js, "\"histograms\":["), 1u);
  EXPECT_NE(js.find("\"name\":\"hmr_a_total\""), std::string::npos);
  EXPECT_NE(js.find("\"labels\":\"level=\\\"0\\\"\""), std::string::npos);
}

TEST(TelemetryMetrics, SnapshotSamplerKeepsBoundedHistory) {
  MetricsRegistry reg;
  auto& c = reg.counter("hmr_ticks_total");
  telemetry::SnapshotSampler sampler(
      reg, std::chrono::hours(1), [&c] { c.add(1); }, /*keep=*/3);
  for (int i = 0; i < 5; ++i) sampler.sample_now();
  const auto hist = sampler.history();
  ASSERT_EQ(hist.size(), 3u); // bounded by keep
  EXPECT_EQ(hist.back().counter("hmr_ticks_total")->value, 5u);
  // Background thread start/stop is idempotent and joins cleanly.
  sampler.start();
  sampler.start();
  sampler.stop();
  sampler.stop();
}

TEST(TelemetryMetrics, BridgeMirrorsPolicyStatsExactly) {
  ooc::PolicyEngine::Stats st;
  st.tasks_run = 1;
  st.fetches = 2;
  st.fetch_bytes = 3;
  st.evicts = 4;
  st.evict_bytes = 5;
  st.fetch_dedup_hits = 6;
  st.lru_reclaims = 7;
  st.advised_pins = 8;
  st.advised_bypasses = 9;
  st.advised_demotions = 10;
  st.cascade_demotions = 11;
  st.tier_trims = 12;

  MetricsRegistry reg;
  telemetry::export_policy_stats(reg, st);
  telemetry::export_policy_stats(reg, st, "shard=\"3\"");
  const auto s = reg.snapshot();
  const struct {
    const char* name;
    std::uint64_t want;
  } expect[] = {
      {"hmr_policy_tasks_run_total", 1},
      {"hmr_policy_fetches_total", 2},
      {"hmr_policy_fetch_bytes_total", 3},
      {"hmr_policy_evicts_total", 4},
      {"hmr_policy_evict_bytes_total", 5},
      {"hmr_policy_fetch_dedup_hits_total", 6},
      {"hmr_policy_lru_reclaims_total", 7},
      {"hmr_policy_advised_pins_total", 8},
      {"hmr_policy_advised_bypasses_total", 9},
      {"hmr_policy_advised_demotions_total", 10},
      {"hmr_policy_cascade_demotions_total", 11},
      {"hmr_policy_tier_trims_total", 12},
  };
  for (const auto& e : expect) {
    const auto* node = s.counter(e.name);
    ASSERT_NE(node, nullptr) << e.name;
    EXPECT_EQ(node->value, e.want) << e.name;
    const auto* shard = s.counter(e.name, "shard=\"3\"");
    ASSERT_NE(shard, nullptr) << e.name;
    EXPECT_EQ(shard->value, e.want) << e.name;
  }
}

// ------------------------------------------------------------- perfetto

struct FlowEvent {
  char ph = 0;
  std::uint64_t id = 0;
  std::size_t pos = 0; // byte offset, for ordering checks
};

std::vector<FlowEvent> parse_flow_events(const std::string& js) {
  std::vector<FlowEvent> out;
  for (std::size_t pos = js.find("\"cat\":\"task_flow\"");
       pos != std::string::npos;
       pos = js.find("\"cat\":\"task_flow\"", pos + 1)) {
    const std::size_t b = js.rfind('\n', pos) + 1;
    const std::size_t e = js.find('\n', pos);
    const std::string line = js.substr(b, e - b);
    FlowEvent ev;
    ev.pos = b;
    const auto php = line.find("\"ph\":\"");
    const auto idp = line.find("\"id\":");
    EXPECT_NE(php, std::string::npos);
    EXPECT_NE(idp, std::string::npos);
    ev.ph = line[php + 6];
    ev.id = std::stoull(line.substr(idp + 5));
    out.push_back(ev);
  }
  return out;
}

TEST(TelemetryPerfetto, EmitsMetadataSlicesAndOneFlowChain) {
  std::vector<Interval> ivs;
  // Task 7's causal chain: fetch on an IO lane, execute on a worker,
  // evict on another IO lane.
  ivs.push_back(make_iv(16, Category::Prefetch, 0.0, 0.1, 7, 1, 0, 1024));
  ivs.push_back(make_iv(2, Category::Compute, 0.1, 0.2, 7));
  ivs.push_back(make_iv(17, Category::Evict, 0.2, 0.3, 7, 0, 1, 1024));
  // A single-interval task draws no arrow.
  ivs.push_back(make_iv(2, Category::Compute, 0.3, 0.4, 9));
  // Non-task-bound and idle intervals never join chains.
  ivs.push_back(make_iv(2, Category::Overhead, 0.4, 0.45));
  ivs.push_back(make_iv(3, Category::Idle, 0.0, 1.0));

  std::ostringstream os;
  telemetry::PerfettoOptions opt;
  opt.worker_lanes = 16;
  telemetry::write_perfetto(os, ivs, opt);
  const std::string js = os.str();

  EXPECT_EQ(js.rfind("{\"displayTimeUnit\":\"ms\"", 0), 0u);
  EXPECT_EQ(count_of(js, "{"), count_of(js, "}"));
  EXPECT_EQ(count_of(js, "["), count_of(js, "]"));

  // Lane metadata: workers are PEs, lanes past worker_lanes are IO.
  EXPECT_NE(js.find("\"name\":\"PE 2\""), std::string::npos);
  EXPECT_NE(js.find("\"name\":\"IO 0\""), std::string::npos);
  EXPECT_NE(js.find("\"name\":\"IO 1\""), std::string::npos);

  // Slices: idle is skipped by default, migrations carry tier args.
  EXPECT_EQ(count_of(js, "\"ph\":\"X\""), 5u);
  EXPECT_EQ(js.find("\"name\":\"idle\""), std::string::npos);
  EXPECT_NE(js.find("\"src_tier\":1,\"dst_tier\":0,\"bytes\":1024"),
            std::string::npos);

  // Exactly one chain: s -> t -> f, all bound to enclosing slices and
  // all carrying task 7's id; task 9 (chain of one) draws nothing.
  const auto flows = parse_flow_events(js);
  ASSERT_EQ(flows.size(), 3u);
  EXPECT_EQ(flows[0].ph, 's');
  EXPECT_EQ(flows[1].ph, 't');
  EXPECT_EQ(flows[2].ph, 'f');
  for (const auto& f : flows) EXPECT_EQ(f.id, 7u);
  EXPECT_EQ(count_of(js, "\"bp\":\"e\""), 3u);
  EXPECT_EQ(js.find("\"id\":9"), std::string::npos);

  // Idle intervals appear when asked for.
  std::ostringstream os2;
  opt.idle = true;
  telemetry::write_perfetto(os2, ivs, opt);
  EXPECT_NE(os2.str().find("\"name\":\"idle\""), std::string::npos);

  // Flow arrows vanish when disabled.
  std::ostringstream os3;
  opt.flows = false;
  telemetry::write_perfetto(os3, ivs, opt);
  EXPECT_TRUE(parse_flow_events(os3.str()).empty());
}

TEST(TelemetryPerfetto, FlowIdsAreUniqueAndPairedUnderRandomTraces) {
  std::mt19937 rng(42);
  std::uniform_int_distribution<int> lanes(0, 7);
  std::uniform_int_distribution<int> steps(1, 4);
  std::vector<Interval> ivs;
  std::map<std::uint64_t, int> expected; // task -> interval count
  double t = 0;
  for (std::uint64_t task = 1; task <= 40; ++task) {
    const int k = steps(rng);
    expected[task] = k;
    for (int i = 0; i < k; ++i) {
      const auto cat = i == 0 && k > 1      ? Category::Prefetch
                       : i + 1 == k && k > 2 ? Category::Evict
                                             : Category::Compute;
      ivs.push_back(make_iv(lanes(rng), cat, t, t + 0.001, task));
      t += 0.0015;
    }
  }

  std::ostringstream os;
  telemetry::write_perfetto(os, ivs, telemetry::PerfettoOptions{});
  const auto flows = parse_flow_events(os.str());

  std::map<std::uint64_t, std::string> phases; // in emission order
  for (const auto& f : flows) phases[f.id] += f.ph;
  for (const auto& [task, k] : expected) {
    if (k < 2) {
      EXPECT_EQ(phases.count(task), 0u) << "task " << task;
      continue;
    }
    ASSERT_EQ(phases.count(task), 1u) << "task " << task;
    // Exactly one start, one finish, k-2 steps, in that order.
    std::string want = "s";
    want += std::string(static_cast<std::size_t>(k - 2), 't');
    want += "f";
    EXPECT_EQ(phases[task], want) << "task " << task;
  }
}

// ------------------------------------------------------ flight recorder

TEST(TelemetryFlight, KeepsLastNTransitionsOldestFirst) {
  telemetry::BlockFlightRecorder fr(/*depth=*/3);
  EXPECT_EQ(fr.depth(), 3u);
  for (int i = 1; i <= 5; ++i) {
    telemetry::BlockFlightRecorder::Transition t;
    t.time = i;
    t.task = static_cast<ooc::TaskId>(i);
    t.src_tier = i % 2;
    t.dst_tier = 1 - i % 2;
    t.bytes = 1024;
    t.fetch = i % 2 == 1;
    fr.record(42, t);
  }
  EXPECT_EQ(fr.total_recorded(42), 5u);
  const auto h = fr.history(42);
  ASSERT_EQ(h.size(), 3u); // ring wrapped: only the last 3 survive
  EXPECT_DOUBLE_EQ(h[0].time, 3.0);
  EXPECT_DOUBLE_EQ(h[1].time, 4.0);
  EXPECT_DOUBLE_EQ(h[2].time, 5.0);
  EXPECT_TRUE(h[2].fetch);

  // Untouched blocks have no history.
  EXPECT_TRUE(fr.history(7).empty());
  EXPECT_EQ(fr.total_recorded(7), 0u);

  std::ostringstream os;
  fr.dump_block(os, 42);
  EXPECT_FALSE(os.str().empty());
  std::ostringstream all;
  fr.dump(all);
  EXPECT_FALSE(all.str().empty());
}

// ------------------------------------------------- executor integration

TEST(TelemetrySim, RegistryTracksPolicyStatsInLockstep) {
  MetricsRegistry reg;
  sim::SimConfig cfg;
  cfg.model = hw::knl_flat_all_to_all();
  cfg.model.num_pes = 8;
  cfg.strategy = ooc::Strategy::MultiIo;
  cfg.fast_capacity = 64 * MiB;
  cfg.trace = true;
  cfg.metrics = &reg;
  cfg.flight_depth = 4;
  sim::SimExecutor ex(cfg);
  const auto r = ex.run(sim::StencilWorkload({.total_bytes = 128 * MiB,
                                              .num_chares = 32,
                                              .num_pes = 8,
                                              .iterations = 2}));
  ASSERT_GT(r.tasks_completed, 0u);

  const auto s = reg.snapshot();
  const auto want = [&](const char* name) {
    const auto* c = s.counter(name);
    ASSERT_NE(c, nullptr) << name;
  };
  want("hmr_policy_tasks_run_total");
  EXPECT_EQ(s.counter("hmr_policy_tasks_run_total")->value,
            r.policy.tasks_run);
  EXPECT_EQ(s.counter("hmr_policy_fetches_total")->value,
            r.policy.fetches);
  EXPECT_EQ(s.counter("hmr_policy_fetch_bytes_total")->value,
            r.policy.fetch_bytes);
  EXPECT_EQ(s.counter("hmr_policy_evicts_total")->value, r.policy.evicts);
  EXPECT_EQ(s.counter("hmr_policy_evict_bytes_total")->value,
            r.policy.evict_bytes);

  // Every executed task went through the wait histogram.
  const auto* wait = s.histogram("hmr_task_wait_ns");
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->count, r.tasks_completed);

  // Transfer completions land in the latency histograms.
  const auto* fetch = s.histogram("hmr_fetch_latency_ns");
  ASSERT_NE(fetch, nullptr);
  EXPECT_GT(fetch->count, 0u);
  EXPECT_LE(fetch->count, r.policy.fetches);

  // Tier occupancy gauges exist for the fast level.
  ASSERT_NE(s.gauge("hmr_tier_capacity_bytes", "level=\"0\""), nullptr);
  EXPECT_GT(s.gauge("hmr_tier_capacity_bytes", "level=\"0\"")->value, 0.0);
  ASSERT_NE(s.counter("hmr_trace_events_dropped_total"), nullptr);

  // Flight recorder captured residency transitions.
  ASSERT_NE(ex.flight_recorder(), nullptr);
  std::ostringstream os;
  ex.flight_recorder()->dump(os);
  EXPECT_FALSE(os.str().empty());
}

TEST(TelemetryRt, MetricsAndFlightRecorderFollowRealMigrations) {
  rt::Runtime::Config cfg;
  cfg.strategy = ooc::Strategy::MultiIo;
  cfg.num_pes = 2;
  cfg.mem_scale = 1.0 / 4096;
  cfg.trace = true;
  cfg.metrics = true;
  rt::Runtime runtime(cfg);
  rt::IoHandle<std::uint64_t> h(runtime, 4096);

  constexpr int kTasks = 10;
  for (int t = 0; t < kTasks; ++t) {
    runtime.send_prefetch(t % 2, {h.dep(ooc::AccessMode::ReadWrite)},
                          [] {});
    runtime.wait_idle(); // serialize: each task fetches and evicts once
  }

  const auto st = runtime.policy_stats();
  ASSERT_NE(runtime.metrics(), nullptr);
  const auto s = runtime.metrics()->snapshot();
  EXPECT_EQ(s.counter("hmr_policy_tasks_run_total")->value, st.tasks_run);
  EXPECT_EQ(s.counter("hmr_policy_fetches_total")->value, st.fetches);
  EXPECT_EQ(s.counter("hmr_policy_evicts_total")->value, st.evicts);

  const auto* wait = s.histogram("hmr_task_wait_ns");
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->count, st.tasks_run);
  const auto* fetch = s.histogram("hmr_fetch_latency_ns");
  ASSERT_NE(fetch, nullptr);
  EXPECT_EQ(fetch->count, st.fetches);
  const auto* evict = s.histogram("hmr_evict_latency_ns");
  ASSERT_NE(evict, nullptr);
  EXPECT_EQ(evict->count, st.evicts);

  ASSERT_NE(s.counter("hmr_trace_events_dropped_total"), nullptr);
  ASSERT_NE(s.gauge("hmr_tier_used_bytes", "level=\"0\""), nullptr);

  // The flight recorder (always on) replays the block's path: a
  // fetch/evict alternation ending in the quiescence eviction.
  ASSERT_NE(runtime.flight_recorder(), nullptr);
  EXPECT_EQ(runtime.flight_recorder()->total_recorded(h.id()),
            st.fetches + st.evicts);
  const auto hist = runtime.flight_recorder()->history(h.id());
  ASSERT_EQ(hist.size(), runtime.flight_recorder()->depth());
  for (std::size_t i = 1; i < hist.size(); ++i) {
    EXPECT_NE(hist[i].fetch, hist[i - 1].fetch);
    EXPECT_GE(hist[i].time, hist[i - 1].time);
  }
  EXPECT_FALSE(hist.back().fetch); // last move was the final evict
}

TEST(TelemetryRt, MetricsAreOptIn) {
  rt::Runtime::Config cfg;
  cfg.strategy = ooc::Strategy::MultiIo;
  cfg.num_pes = 2;
  cfg.mem_scale = 1.0 / 4096;
  rt::Runtime runtime(cfg);
  EXPECT_EQ(runtime.metrics(), nullptr);
  runtime.send(0, [] {});
  runtime.wait_idle();
}

} // namespace
} // namespace hmr
