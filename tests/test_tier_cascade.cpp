// N-tier placement hierarchy: demotion-cascade behaviour on three-level
// engines (docs/TIERS.md).  Covers target selection (first lower level
// with room, overflow to the unbounded bottom), watermark trims off
// middle levels, promotion out of a middle level, advice-forced deep
// demotion (kLevelFar), the no-cascade ablation switch, the sharded
// engine's fill-then-overflow variant, the tracer's per-tier-pair
// traffic accounting, and a three-tier end-to-end sim smoke.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "hw/machine_model.hpp"
#include "ooc/policy_engine.hpp"
#include "rt/sharded_engine.hpp"
#include "sim/sim_executor.hpp"
#include "sim/stencil_workload.hpp"
#include "trace/tracer.hpp"
#include "util/units.hpp"

namespace {

using namespace hmr;

// Distinctive tier ids prove command labels come from TierDesc::id,
// not from hierarchy positions: top=7, middle=5, bottom=3.
constexpr ooc::TierId kTop = 7, kMid = 5, kBot = 3;

ooc::PolicyEngine::Config three_level(std::uint64_t top_cap,
                                      std::uint64_t mid_cap,
                                      double mid_watermark = 1.0) {
  ooc::PolicyEngine::Config cfg;
  cfg.strategy = ooc::Strategy::MultiIo;
  cfg.num_pes = 1;
  cfg.tiers = {{kTop, top_cap, 1.0}, {kMid, mid_cap, mid_watermark},
               {kBot, 0, 1.0}};
  return cfg;
}

/// Depth-first pump: execute every command immediately, in order.
void pump(ooc::PolicyEngine& e, std::vector<ooc::Command> cmds,
          std::vector<ooc::Command>* log = nullptr) {
  for (std::size_t i = 0; i < cmds.size(); ++i) {
    if (log != nullptr) log->push_back(cmds[i]);
    std::vector<ooc::Command> more;
    switch (cmds[i].kind) {
      case ooc::Command::Kind::Fetch:
        more = e.on_fetch_complete(cmds[i].block);
        break;
      case ooc::Command::Kind::Evict:
        more = e.on_evict_complete(cmds[i].block);
        break;
      case ooc::Command::Kind::Run:
        more = e.on_task_complete(cmds[i].task);
        break;
    }
    cmds.insert(cmds.end(), more.begin(), more.end());
  }
}

ooc::TaskDesc one_dep_task(ooc::TaskId id, ooc::BlockId b) {
  ooc::TaskDesc d;
  d.id = id;
  d.pe = 0;
  d.deps = {{b, ooc::AccessMode::ReadWrite}};
  return d;
}

/// Run a one-dep task to completion and return the commands it caused.
std::vector<ooc::Command> run_task(ooc::PolicyEngine& e, ooc::TaskId id,
                                   ooc::BlockId b) {
  std::vector<ooc::Command> log;
  pump(e, e.on_task_arrived(one_dep_task(id, b)), &log);
  return log;
}

std::vector<ooc::Command> evicts_of(const std::vector<ooc::Command>& log) {
  std::vector<ooc::Command> v;
  for (const auto& c : log)
    if (c.kind == ooc::Command::Kind::Evict) v.push_back(c);
  return v;
}

// ------------------------------------------------------------- tests

TEST(TierCascade, EvictionsFillMiddleThenOverflowToBottom) {
  ooc::PolicyEngine e(three_level(/*top=*/100, /*mid=*/200));
  for (ooc::BlockId b = 0; b < 3; ++b)
    EXPECT_EQ(e.add_block(b, 100), kBot); // movement: born on the bottom

  // First two evictions land on the middle level (room for 2 x 100).
  for (ooc::BlockId b = 0; b < 2; ++b) {
    const auto ev = evicts_of(run_task(e, 1 + b, b));
    ASSERT_EQ(ev.size(), 1u);
    EXPECT_EQ(ev[0].src_tier, kTop);
    EXPECT_EQ(ev[0].dst_tier, kMid);
  }
  EXPECT_EQ(e.tier_used(1), 200u);

  // Middle full: the third eviction overflows to the bottom.
  const auto ev = evicts_of(run_task(e, 3, 2));
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].src_tier, kTop);
  EXPECT_EQ(ev[0].dst_tier, kBot);

  EXPECT_EQ(e.stats().cascade_demotions, 2u);
  EXPECT_EQ(e.stats().tier_trims, 0u);
  EXPECT_TRUE(e.quiescent());
}

TEST(TierCascade, PromotionDrainsTheMiddleLevel) {
  ooc::PolicyEngine e(three_level(/*top=*/100, /*mid=*/200));
  e.add_block(0, 100);
  run_task(e, 1, 0); // fetch bottom->top, evict top->middle
  EXPECT_EQ(e.block_tier(0), kMid);
  EXPECT_EQ(e.tier_used(1), 100u);

  // Re-running the block promotes it out of the middle level...
  const auto log = run_task(e, 2, 0);
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log[0].kind, ooc::Command::Kind::Fetch);
  EXPECT_EQ(log[0].src_tier, kMid);
  EXPECT_EQ(log[0].dst_tier, kTop);
  // ...after which it was evicted again and the middle holds it again
  // (capacity freed on promotion was reusable for the re-demotion).
  EXPECT_EQ(e.block_tier(0), kMid);
  EXPECT_EQ(e.tier_used(1), 100u);
  EXPECT_TRUE(e.quiescent());
}

TEST(TierCascade, WatermarkTrimsColdestOffTheMiddle) {
  // Middle watermark 0.5 of 200: at most 100 resident bytes survive a
  // trim pass; landing the second block triggers a middle->bottom trim
  // of the coldest (first-demoted) block.
  ooc::PolicyEngine e(three_level(/*top=*/100, /*mid=*/200,
                                  /*mid_watermark=*/0.5));
  e.add_block(0, 100);
  e.add_block(1, 100);
  run_task(e, 1, 0);
  const auto log = run_task(e, 2, 1);
  const auto ev = evicts_of(log);
  // Eviction of block 1 to the middle, then the trim of block 0 to the
  // bottom scheduled in the same command batch.
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_EQ(ev[0].block, 1u);
  EXPECT_EQ(ev[0].dst_tier, kMid);
  EXPECT_EQ(ev[1].block, 0u);
  EXPECT_EQ(ev[1].src_tier, kMid);
  EXPECT_EQ(ev[1].dst_tier, kBot);
  EXPECT_EQ(e.stats().tier_trims, 1u);
  EXPECT_EQ(e.block_tier(0), kBot);
  EXPECT_EQ(e.block_tier(1), kMid);
  EXPECT_TRUE(e.quiescent());
}

TEST(TierCascade, KLevelFarAdviceSkipsTheMiddle) {
  struct FarAdvisor final : ooc::AdviceProvider {
    ooc::BlockAdvice advise(ooc::BlockId, std::uint64_t) const override {
      ooc::BlockAdvice a;
      a.demote_level = ooc::kLevelFar;
      return a;
    }
    bool may_bypass() const override { return false; }
  } advisor;

  auto cfg = three_level(/*top=*/100, /*mid=*/200);
  cfg.advisor = &advisor;
  ooc::PolicyEngine e(cfg);
  e.add_block(0, 100);
  const auto ev = evicts_of(run_task(e, 1, 0));
  ASSERT_EQ(ev.size(), 1u); // middle has room, yet advice forces bottom
  EXPECT_EQ(ev[0].src_tier, kTop);
  EXPECT_EQ(ev[0].dst_tier, kBot);
  EXPECT_EQ(e.stats().cascade_demotions, 0u);
  EXPECT_TRUE(e.quiescent());
}

TEST(TierCascade, NoCascadeDemotesStraightToBottom) {
  auto cfg = three_level(/*top=*/100, /*mid=*/200);
  cfg.demote_cascade = false;
  ooc::PolicyEngine e(cfg);
  for (ooc::BlockId b = 0; b < 2; ++b) e.add_block(b, 100);
  for (ooc::BlockId b = 0; b < 2; ++b) {
    const auto ev = evicts_of(run_task(e, 1 + b, b));
    ASSERT_EQ(ev.size(), 1u);
    EXPECT_EQ(ev[0].dst_tier, kBot);
  }
  EXPECT_EQ(e.stats().cascade_demotions, 0u);
  EXPECT_EQ(e.tier_used(1), 0u); // middle never touched
  EXPECT_TRUE(e.quiescent());
}

TEST(TierCascade, ShardedFillsMiddleThenOverflows) {
  rt::ShardedEngine::Config cfg;
  cfg.num_pes = 1;
  cfg.tiers = {{kTop, 100, 1.0}, {kMid, 200, 1.0}, {kBot, 0, 1.0}};
  rt::ShardedEngine e(cfg);
  for (ooc::BlockId b = 0; b < 3; ++b)
    EXPECT_EQ(e.add_block(b, 100), kBot);

  std::vector<ooc::Command> evict_log;
  auto pump_sh = [&](std::vector<ooc::Command> cmds) {
    for (std::size_t i = 0; i < cmds.size(); ++i) {
      if (cmds[i].kind == ooc::Command::Kind::Evict)
        evict_log.push_back(cmds[i]);
      std::vector<ooc::Command> more;
      switch (cmds[i].kind) {
        case ooc::Command::Kind::Fetch:
          more = e.on_fetch_complete(cmds[i].block);
          break;
        case ooc::Command::Kind::Evict:
          more = e.on_evict_complete(cmds[i].block);
          break;
        case ooc::Command::Kind::Run:
          more = e.on_task_complete(cmds[i].task, cmds[i].pe);
          break;
      }
      cmds.insert(cmds.end(), more.begin(), more.end());
    }
  };
  for (ooc::BlockId b = 0; b < 3; ++b)
    pump_sh(e.on_task_arrived(one_dep_task(1 + b, b)));

  ASSERT_EQ(evict_log.size(), 3u);
  EXPECT_EQ(evict_log[0].dst_tier, kMid);
  EXPECT_EQ(evict_log[1].dst_tier, kMid);
  EXPECT_EQ(evict_log[2].dst_tier, kBot); // middle budget exhausted
  EXPECT_EQ(e.stats().cascade_demotions, 2u);
  EXPECT_TRUE(e.quiescent());
}

TEST(TierCascade, TracerAccumulatesPerTierPairTraffic) {
  trace::Tracer t(/*enabled=*/true);
  t.record_migration(0, trace::Category::Prefetch, 0.0, 1.0, 1, kBot, kTop,
                     1000);
  t.record_migration(0, trace::Category::Prefetch, 1.0, 2.0, 2, kBot, kTop,
                     500);
  t.record_migration(0, trace::Category::Evict, 2.0, 4.0, 1, kTop, kMid,
                     700);
  const auto s = t.summarize();
  ASSERT_EQ(s.migrations.size(), 2u);
  const auto up = s.migration_between(kBot, kTop);
  EXPECT_EQ(up.bytes, 1500u);
  EXPECT_EQ(up.count, 2u);
  EXPECT_DOUBLE_EQ(up.seconds, 2.0);
  const auto down = s.migration_between(kTop, kMid);
  EXPECT_EQ(down.bytes, 700u);
  EXPECT_EQ(down.count, 1u);
  // Absent pair: zeroed record with the ids filled in.
  EXPECT_EQ(s.migration_between(kMid, kBot).bytes, 0u);

  // Windowed summaries prorate bytes by clipped overlap: the evict
  // interval [2,4) overlaps [0,3) for half its span.
  const auto w = t.summarize(/*worker_lanes=*/-1, 0.0, 3.0);
  EXPECT_EQ(w.migration_between(kTop, kMid).bytes, 350u);
  EXPECT_EQ(w.migration_between(kBot, kTop).bytes, 1500u);
}

TEST(TierCascade, ThreeTierSimSmoke) {
  const auto model = hw::three_tier_hbm_ddr_nvm();
  const auto p = sim::StencilWorkload::params_for_reduced(
      48 * GiB, 8 * GiB, model.num_pes, /*iterations=*/2);
  sim::SimConfig cfg;
  cfg.model = model;
  cfg.strategy = ooc::Strategy::MultiIo;
  cfg.trace = true;
  sim::SimExecutor ex(cfg);
  const auto r = ex.run(sim::StencilWorkload(p));
  EXPECT_GT(r.total_time, 0.0);
  EXPECT_GT(r.policy.cascade_demotions, 0u);
  // Working set (48G) exceeds HBM (16G) but fits HBM+DDR: steady-state
  // refetches come over the DDR->HBM channel, not from NVM.
  const auto sum = ex.tracer().summarize();
  EXPECT_GT(sum.migration_between(2, model.fast).bytes, 0u);
  EXPECT_GT(sum.migration_between(model.fast, 2).bytes, 0u);
}

} // namespace
