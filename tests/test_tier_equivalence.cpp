// Property tests for the two-tier equivalence contract (docs/TIERS.md):
// on any two-level hierarchy the N-tier PolicyEngine must replay the
// seed two-tier engine's command stream EXACTLY — same commands, same
// order, same fields — for every strategy, eviction mode and admission
// mode, under randomized workloads and randomized completion
// interleavings.  The reference is the real pre-N-tier engine, compiled
// verbatim from git history under `refimpl::` (tests/refimpl/).
//
// The sharded engine has no such stream-level contract (its per-shard
// queues reorder commands), so it is held to the seed engine's traffic
// stats on sequential drives instead, mirroring the PR-2 parity test.

#include <cstdint>
#include <cstring>
#include <deque>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "mem/memory_manager.hpp"
#include "ooc/policy_engine.hpp"
#include "refimpl/reference_engine.hpp"
#include "rt/sharded_engine.hpp"

namespace {

using namespace hmr;
namespace ref = refimpl::hmr::ooc;

// ---------------------------------------------------------- workloads

struct DepSpec {
  std::uint64_t block = 0;
  int mode = 0; // index into AccessMode, shared by both engines
};

struct TaskSpec {
  std::uint64_t id = 0;
  std::int32_t pe = 0;
  std::vector<DepSpec> deps;
  bool prefetch = true;
};

struct Scenario {
  std::int32_t num_pes = 4;
  std::vector<std::uint64_t> block_bytes;
  std::vector<TaskSpec> tasks;

  std::uint64_t total_bytes() const {
    std::uint64_t n = 0;
    for (auto b : block_bytes) n += b;
    return n;
  }
};

/// Random blocks and tasks; every task footprint stays well under the
/// capacities the tests use, so all-or-nothing admission always has a
/// way forward (the seed engine aborts the process on a wedge, which
/// is itself part of the property being checked).
Scenario make_scenario(std::uint32_t seed, std::int32_t num_pes,
                       int num_blocks, int num_tasks) {
  std::mt19937 rng(seed);
  Scenario sc;
  sc.num_pes = num_pes;
  for (int b = 0; b < num_blocks; ++b) {
    sc.block_bytes.push_back(64 * (1 + rng() % 32));
  }
  for (int t = 0; t < num_tasks; ++t) {
    TaskSpec ts;
    ts.id = 1 + static_cast<std::uint64_t>(t);
    ts.pe = static_cast<std::int32_t>(rng() % num_pes);
    ts.prefetch = rng() % 8 != 0; // some plain entry methods too
    const int ndeps = 1 + static_cast<int>(rng() % 3);
    for (int d = 0; d < ndeps; ++d) {
      const std::uint64_t b = rng() % num_blocks;
      bool dup = false;
      for (const auto& e : ts.deps) dup = dup || e.block == b;
      if (dup) continue; // engines reject duplicate deps
      ts.deps.push_back({b, static_cast<int>(rng() % 3)});
    }
    sc.tasks.push_back(std::move(ts));
  }
  return sc;
}

ooc::TaskDesc to_ntier(const TaskSpec& ts) {
  ooc::TaskDesc d;
  d.id = ts.id;
  d.pe = ts.pe;
  d.prefetch = ts.prefetch;
  for (const auto& e : ts.deps)
    d.deps.push_back({e.block, static_cast<ooc::AccessMode>(e.mode)});
  return d;
}

ref::TaskDesc to_seed(const TaskSpec& ts) {
  ref::TaskDesc d;
  d.id = ts.id;
  d.pe = ts.pe;
  d.prefetch = ts.prefetch;
  for (const auto& e : ts.deps)
    d.deps.push_back({e.block, static_cast<ref::AccessMode>(e.mode)});
  return d;
}

/// Seed-engine config mirroring an N-tier config (which must describe
/// a two-level hierarchy).
ref::PolicyEngine::Config mirror_config(const ooc::PolicyEngine::Config& n) {
  ref::PolicyEngine::Config r;
  r.strategy = static_cast<ref::Strategy>(n.strategy);
  r.num_pes = n.num_pes;
  r.fast_capacity =
      n.tiers.empty() ? n.fast_capacity : n.tiers.front().capacity;
  r.eager_evict = n.eager_evict;
  r.evict_by_worker = n.evict_by_worker;
  r.writeonly_nocopy = n.writeonly_nocopy;
  r.fair_admission = n.fair_admission;
  r.lru_watermark =
      n.tiers.empty() ? n.lru_watermark : n.tiers.front().watermark;
  return r;
}

// ------------------------------------------------- lockstep replayer

/// Drive both engines through the same randomized event interleaving
/// and require identical command streams at every step.  `fast_id` /
/// `slow_id` are the tier ids the N-tier engine must stamp on the
/// migration commands (the seed engine predates tier labels).
/// All-defaults advice for the seed engine, so that installing a
/// (two-level-inert) advisor on the N-tier side arms the same parking
/// LRU machinery on both.
struct NullRefAdvisor final : ref::AdviceProvider {
  ref::BlockAdvice advise(ref::BlockId, std::uint64_t) const override {
    return {};
  }
  bool may_bypass() const override { return false; }
};

void run_lockstep(const Scenario& sc, const ooc::PolicyEngine::Config& ncfg,
                  std::uint32_t drive_seed, ooc::TierId fast_id,
                  ooc::TierId slow_id) {
  static const NullRefAdvisor null_ref_advisor;
  ooc::PolicyEngine nt(ncfg);
  ref::PolicyEngine::Config rcfg = mirror_config(ncfg);
  if (ncfg.advisor != nullptr) rcfg.advisor = &null_ref_advisor;
  ref::PolicyEngine se(rcfg);
  std::mt19937 rng(drive_seed);
  std::deque<ooc::Command> pending;

  for (std::uint64_t b = 0; b < sc.block_bytes.size(); ++b) {
    const ooc::TierId tier = nt.add_block(b, sc.block_bytes[b]);
    const ref::Placement p = se.add_block(b, sc.block_bytes[b]);
    ASSERT_EQ(tier == fast_id, p == ref::Placement::Fast)
        << "block " << b << " placed differently";
    ASSERT_TRUE(tier == fast_id || tier == slow_id);
  }

  auto absorb = [&](const std::vector<ooc::Command>& nc,
                    const std::vector<ref::Command>& rc) {
    ASSERT_EQ(nc.size(), rc.size()) << "command streams diverged";
    for (std::size_t i = 0; i < nc.size(); ++i) {
      ASSERT_EQ(static_cast<int>(nc[i].kind), static_cast<int>(rc[i].kind));
      ASSERT_EQ(nc[i].block, rc[i].block);
      if (nc[i].kind != ooc::Command::Kind::Evict) {
        // Evict commands now carry the triggering task as a telemetry
        // annotation (flow stitching in the Perfetto export); the seed
        // refimpl predates that and leaves kInvalidTask there.  The
        // field is policy-inert on evictions, so it is exempt from the
        // bit-identical comparison.
        ASSERT_EQ(nc[i].task, rc[i].task);
      }
      ASSERT_EQ(nc[i].agent, rc[i].agent);
      ASSERT_EQ(nc[i].pe, rc[i].pe);
      ASSERT_EQ(nc[i].nocopy, rc[i].nocopy);
      if (nc[i].kind == ooc::Command::Kind::Fetch) {
        ASSERT_EQ(nc[i].src_tier, slow_id);
        ASSERT_EQ(nc[i].dst_tier, fast_id);
      } else if (nc[i].kind == ooc::Command::Kind::Evict) {
        ASSERT_EQ(nc[i].src_tier, fast_id);
        ASSERT_EQ(nc[i].dst_tier, slow_id);
      }
      pending.push_back(nc[i]);
    }
  };

  std::size_t next_task = 0;
  while (next_task < sc.tasks.size() || !pending.empty()) {
    const bool inject = next_task < sc.tasks.size() &&
                        (pending.empty() || rng() % 3 == 0);
    if (inject) {
      const TaskSpec& ts = sc.tasks[next_task++];
      absorb(nt.on_task_arrived(to_ntier(ts)),
             se.on_task_arrived(to_seed(ts)));
    } else {
      const std::size_t j = rng() % pending.size();
      const ooc::Command c = pending[j];
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(j));
      switch (c.kind) {
        case ooc::Command::Kind::Fetch:
          absorb(nt.on_fetch_complete(c.block),
                 se.on_fetch_complete(c.block));
          break;
        case ooc::Command::Kind::Evict:
          absorb(nt.on_evict_complete(c.block),
                 se.on_evict_complete(c.block));
          break;
        case ooc::Command::Kind::Run:
          absorb(nt.on_task_complete(c.task), se.on_task_complete(c.task));
          break;
      }
    }
    if (::testing::Test::HasFatalFailure()) return;
  }

  EXPECT_TRUE(nt.quiescent());
  EXPECT_TRUE(se.quiescent());
  const auto& a = nt.stats();
  const auto& b = se.stats();
  EXPECT_EQ(a.tasks_run, b.tasks_run);
  EXPECT_EQ(a.fetches, b.fetches);
  EXPECT_EQ(a.fetch_bytes, b.fetch_bytes);
  EXPECT_EQ(a.evicts, b.evicts);
  EXPECT_EQ(a.evict_bytes, b.evict_bytes);
  EXPECT_EQ(a.fetch_dedup_hits, b.fetch_dedup_hits);
  EXPECT_EQ(a.lru_reclaims, b.lru_reclaims);
  EXPECT_EQ(a.cascade_demotions, 0u); // impossible on two levels
  EXPECT_EQ(a.tier_trims, 0u);
  EXPECT_EQ(nt.fast_used(), se.fast_used());
  EXPECT_EQ(nt.lru_bytes(), se.lru_bytes());
  for (std::uint64_t blk = 0; blk < sc.block_bytes.size(); ++blk) {
    EXPECT_EQ(static_cast<int>(nt.block_state(blk)),
              static_cast<int>(se.block_state(blk)))
        << "block " << blk;
  }
}

const ooc::Strategy kAllStrategies[] = {
    ooc::Strategy::Naive,    ooc::Strategy::DdrOnly,
    ooc::Strategy::HbmOnly,  ooc::Strategy::SingleIo,
    ooc::Strategy::SyncNoIo, ooc::Strategy::MultiIo,
};

// ------------------------------------------------------------- tests

TEST(TierEquivalence, AllStrategiesLegacyConfigEager) {
  for (const auto s : kAllStrategies) {
    for (std::uint32_t seed : {1u, 2u, 3u}) {
      const auto sc = make_scenario(seed, 4, 24, 120);
      ooc::PolicyEngine::Config cfg;
      cfg.strategy = s;
      cfg.num_pes = sc.num_pes;
      // HbmOnly needs everything to fit; the others get pressure.
      cfg.fast_capacity = s == ooc::Strategy::HbmOnly
                              ? sc.total_bytes()
                              : sc.total_bytes() / 3 + 64 * 32;
      run_lockstep(sc, cfg, /*drive_seed=*/seed * 77, 1, 0);
      if (::testing::Test::HasFatalFailure()) {
        ADD_FAILURE() << "diverged: strategy "
                      << ooc::strategy_name(s) << " seed " << seed;
        return;
      }
    }
  }
}

TEST(TierEquivalence, MovementStrategiesLazyLru) {
  for (const auto s : {ooc::Strategy::SingleIo, ooc::Strategy::SyncNoIo,
                       ooc::Strategy::MultiIo}) {
    const auto sc = make_scenario(11, 4, 24, 120);
    ooc::PolicyEngine::Config cfg;
    cfg.strategy = s;
    cfg.num_pes = sc.num_pes;
    cfg.fast_capacity = sc.total_bytes() / 3 + 64 * 32;
    cfg.eager_evict = false;
    cfg.lru_watermark = 0.6;
    run_lockstep(sc, cfg, /*drive_seed=*/99, 1, 0);
    if (::testing::Test::HasFatalFailure()) {
      ADD_FAILURE() << "diverged: lazy " << ooc::strategy_name(s);
      return;
    }
  }
}

TEST(TierEquivalence, UnfairAdmissionAndWorkerEvict) {
  const auto sc = make_scenario(21, 3, 18, 90);
  ooc::PolicyEngine::Config cfg;
  cfg.strategy = ooc::Strategy::MultiIo;
  cfg.num_pes = sc.num_pes;
  cfg.fast_capacity = sc.total_bytes() / 3 + 64 * 32;
  cfg.fair_admission = false;
  cfg.evict_by_worker = true;
  run_lockstep(sc, cfg, /*drive_seed=*/5, 1, 0);
}

TEST(TierEquivalence, WriteonlyNocopy) {
  const auto sc = make_scenario(31, 4, 24, 120);
  ooc::PolicyEngine::Config cfg;
  cfg.strategy = ooc::Strategy::SingleIo;
  cfg.num_pes = sc.num_pes;
  cfg.fast_capacity = sc.total_bytes() / 3 + 64 * 32;
  cfg.writeonly_nocopy = true;
  run_lockstep(sc, cfg, /*drive_seed=*/6, 1, 0);
}

/// An explicit two-level hierarchy (with non-legacy tier ids) is the
/// same engine as the derived one: the stream must still match the
/// seed, with the custom ids stamped on the migration commands.
TEST(TierEquivalence, ExplicitTwoLevelHierarchyCustomIds) {
  const auto sc = make_scenario(41, 4, 24, 120);
  ooc::PolicyEngine::Config cfg;
  cfg.strategy = ooc::Strategy::MultiIo;
  cfg.num_pes = sc.num_pes;
  cfg.tiers = {{/*id=*/9, sc.total_bytes() / 3 + 64 * 32, 1.0},
               {/*id=*/4, 0, 1.0}};
  run_lockstep(sc, cfg, /*drive_seed=*/7, 9, 4);
}

/// BlockAdvice::demote_level must be ignored on two-level hierarchies:
/// an advisor that only sets it (no pin/bypass/demote_first) must not
/// perturb the stream.
TEST(TierEquivalence, DemoteLevelAdviceIsInertOnTwoLevels) {
  struct FarAdvisor final : ooc::AdviceProvider {
    ooc::BlockAdvice advise(ooc::BlockId, std::uint64_t) const override {
      ooc::BlockAdvice a;
      a.demote_level = ooc::kLevelFar;
      return a;
    }
    bool may_bypass() const override { return false; }
  } advisor;

  const auto sc = make_scenario(51, 4, 24, 120);
  ooc::PolicyEngine::Config cfg;
  cfg.strategy = ooc::Strategy::MultiIo;
  cfg.num_pes = sc.num_pes;
  cfg.fast_capacity = sc.total_bytes() / 3 + 64 * 32;
  cfg.advisor = &advisor;
  // Note: installing an advisor enables the parking LRU (pinned blocks
  // may park), which the seed engine does too — same code path, so the
  // streams still match command for command.
  run_lockstep(sc, cfg, /*drive_seed=*/8, 1, 0);
}

// ------------------------------------------- sharded engine vs seed

/// Depth-first sequential drive: every engine executes its own
/// commands immediately.  The sharded engine may order commands
/// differently, so the contract is the seed engine's traffic stats.
TEST(TierEquivalence, ShardedMatchesSeedStatsSequential) {
  const auto sc = make_scenario(61, 4, 24, 160);
  const std::uint64_t cap = sc.total_bytes() / 3 + 64 * 32;

  ref::PolicyEngine::Config rc;
  rc.strategy = ref::Strategy::MultiIo;
  rc.num_pes = sc.num_pes;
  rc.fast_capacity = cap;
  ref::PolicyEngine se(rc);

  rt::ShardedEngine::Config hc;
  hc.num_pes = sc.num_pes;
  hc.fast_capacity = cap;
  rt::ShardedEngine sh(hc);

  for (std::uint64_t b = 0; b < sc.block_bytes.size(); ++b) {
    se.add_block(b, sc.block_bytes[b]);
    sh.add_block(b, sc.block_bytes[b]);
  }

  auto pump_seed = [&](std::vector<ref::Command> cmds) {
    for (std::size_t i = 0; i < cmds.size(); ++i) {
      std::vector<ref::Command> more;
      switch (cmds[i].kind) {
        case ref::Command::Kind::Fetch:
          more = se.on_fetch_complete(cmds[i].block);
          break;
        case ref::Command::Kind::Evict:
          more = se.on_evict_complete(cmds[i].block);
          break;
        case ref::Command::Kind::Run:
          more = se.on_task_complete(cmds[i].task);
          break;
      }
      cmds.insert(cmds.end(), more.begin(), more.end());
    }
  };
  auto pump_sharded = [&](std::vector<ooc::Command> cmds) {
    for (std::size_t i = 0; i < cmds.size(); ++i) {
      std::vector<ooc::Command> more;
      switch (cmds[i].kind) {
        case ooc::Command::Kind::Fetch:
          more = sh.on_fetch_complete(cmds[i].block);
          break;
        case ooc::Command::Kind::Evict:
          more = sh.on_evict_complete(cmds[i].block);
          break;
        case ooc::Command::Kind::Run:
          more = sh.on_task_complete(cmds[i].task, cmds[i].pe);
          break;
      }
      cmds.insert(cmds.end(), more.begin(), more.end());
    }
  };

  for (const auto& ts : sc.tasks) {
    pump_seed(se.on_task_arrived(to_seed(ts)));
    pump_sharded(sh.on_task_arrived(to_ntier(ts)));
  }

  EXPECT_TRUE(se.quiescent());
  EXPECT_TRUE(sh.quiescent());
  const auto a = sh.stats();
  const auto& b = se.stats();
  EXPECT_EQ(a.tasks_run, b.tasks_run);
  EXPECT_EQ(a.fetches, b.fetches);
  EXPECT_EQ(a.fetch_bytes, b.fetch_bytes);
  EXPECT_EQ(a.evicts, b.evicts);
  EXPECT_EQ(a.evict_bytes, b.evict_bytes);
  EXPECT_EQ(sh.fast_used(), se.fast_used());
  EXPECT_EQ(sh.fast_used(), 0u);
}

// ------------------------------- zero-copy admission vs seed engine

/// Physical equivalence of zero-copy admission (docs/PERF.md §4): one
/// seed engine drives the SAME sequential command stream into two
/// MemoryManagers, one copying every migration and one admitting
/// shadow swaps.  Zero-copy is below the policy layer, so both
/// managers must report migration stats that lock exactly to the
/// engine's fetch/evict totals (logical moves), and every block must
/// end byte-identical across the two managers.  Writes are mirrored
/// through mark_dirty exactly as the threaded runtime does after each
/// Run command.
TEST(TierEquivalence, ZeroCopyManagerLocksToSeedEngineStats) {
  const auto sc = make_scenario(71, 4, 24, 160);
  const std::uint64_t cap = sc.total_bytes() / 3 + 64 * 32;

  ref::PolicyEngine::Config rc;
  rc.strategy = ref::Strategy::MultiIo;
  rc.num_pes = sc.num_pes;
  rc.fast_capacity = cap;
  ref::PolicyEngine se(rc);

  // Tier 0 = slow home, tier 1 = fast.  Slow holds everything plus
  // retained shadows; fast gets the engine's capacity plus headroom
  // for shadows (reclaimed on demand when a fetch needs the room).
  mem::MemoryManager mm_off(
      {{"slow", sc.total_bytes() * 2 + (64u << 10)},
       {"fast", cap + (64u << 10)}});
  mem::MemoryManager mm_on(
      {{"slow", sc.total_bytes() * 2 + (64u << 10)},
       {"fast", cap + (64u << 10)}});
  mm_on.set_zero_copy(true);

  std::vector<mem::BlockId> ids_off, ids_on;
  for (std::uint64_t b = 0; b < sc.block_bytes.size(); ++b) {
    se.add_block(b, sc.block_bytes[b]);
    ids_off.push_back(mm_off.register_block(sc.block_bytes[b], 0));
    ids_on.push_back(mm_on.register_block(sc.block_bytes[b], 0));
    ASSERT_NE(ids_off.back(), mem::kInvalidBlock);
    ASSERT_NE(ids_on.back(), mem::kInvalidBlock);
    // Same deterministic contents in both managers.
    for (auto* mm : {&mm_off, &mm_on}) {
      auto* p = static_cast<unsigned char*>(
          mm->block_ptr(mm == &mm_off ? ids_off[b] : ids_on[b]));
      for (std::uint64_t i = 0; i < sc.block_bytes[b]; ++i) {
        p[i] = static_cast<unsigned char>(b * 97 + i);
      }
    }
  }

  // Task id -> blocks it writes (mirrors Runtime::run_ready_batch's
  // mark_dirty sweep after the body runs).
  std::vector<std::vector<std::uint64_t>> writes(sc.tasks.size() + 2);
  for (const auto& ts : sc.tasks) {
    for (const auto& d : ts.deps) {
      if (static_cast<ooc::AccessMode>(d.mode) !=
          ooc::AccessMode::ReadOnly) {
        writes[ts.id].push_back(d.block);
      }
    }
  }

  auto apply = [&](const ref::Command& c) {
    switch (c.kind) {
      case ref::Command::Kind::Fetch: {
        const auto off = mm_off.migrate(ids_off[c.block], 1);
        const auto on = mm_on.migrate(ids_on[c.block], 1);
        ASSERT_TRUE(off.ok && on.ok);
        break;
      }
      case ref::Command::Kind::Evict: {
        const auto off =
            mm_off.migrate(ids_off[c.block], 0, !c.nocopy);
        const auto on = mm_on.migrate(ids_on[c.block], 0, !c.nocopy);
        ASSERT_TRUE(off.ok && on.ok);
        break;
      }
      case ref::Command::Kind::Run:
        // The "body" wrote its write-mode deps: simulate the write so
        // stale shadows would be observable, then invalidate.
        for (const std::uint64_t b : writes[c.task]) {
          for (auto* mm : {&mm_off, &mm_on}) {
            const mem::BlockId id =
                mm == &mm_off ? ids_off[b] : ids_on[b];
            auto* p = static_cast<unsigned char*>(mm->block_ptr(id));
            p[0] = static_cast<unsigned char>(c.task);
            mm->mark_dirty(id);
          }
        }
        break;
    }
  };
  auto pump = [&](std::vector<ref::Command> cmds) {
    for (std::size_t i = 0; i < cmds.size(); ++i) {
      apply(cmds[i]);
      std::vector<ref::Command> more;
      switch (cmds[i].kind) {
        case ref::Command::Kind::Fetch:
          more = se.on_fetch_complete(cmds[i].block);
          break;
        case ref::Command::Kind::Evict:
          more = se.on_evict_complete(cmds[i].block);
          break;
        case ref::Command::Kind::Run:
          more = se.on_task_complete(cmds[i].task);
          break;
      }
      cmds.insert(cmds.end(), more.begin(), more.end());
    }
  };
  for (const auto& ts : sc.tasks) pump(se.on_task_arrived(to_seed(ts)));
  EXPECT_TRUE(se.quiescent());

  // Both managers' logical migration stats lock to the engine's.
  const auto& st = se.stats();
  for (auto* mm : {&mm_off, &mm_on}) {
    const auto up = mm->migration_stats(0, 1);
    const auto down = mm->migration_stats(1, 0);
    EXPECT_EQ(up.count, st.fetches);
    EXPECT_EQ(up.bytes, st.fetch_bytes);
    EXPECT_EQ(down.count, st.evicts);
    EXPECT_EQ(down.bytes, st.evict_bytes);
  }

  // The workload re-fetches evicted blocks, so swaps must have been
  // admitted — and only on the manager that has them enabled.
  EXPECT_GT(mm_on.zero_copy_admissions(), 0u);
  EXPECT_EQ(mm_off.zero_copy_admissions(), 0u);

  // Byte-identical contents, block by block.
  for (std::uint64_t b = 0; b < sc.block_bytes.size(); ++b) {
    const auto* p_off =
        static_cast<const unsigned char*>(mm_off.block_ptr(ids_off[b]));
    const auto* p_on =
        static_cast<const unsigned char*>(mm_on.block_ptr(ids_on[b]));
    ASSERT_EQ(std::memcmp(p_off, p_on, sc.block_bytes[b]), 0)
        << "block " << b;
  }
}

} // namespace
