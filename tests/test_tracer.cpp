// Tests for the Projections-like tracer.

#include <gtest/gtest.h>

#include <sstream>

#include "trace/tracer.hpp"

namespace hmr::trace {
namespace {

TEST(Tracer, DisabledRecordsNothing) {
  Tracer t(false);
  t.record(0, Category::Compute, 0.0, 1.0);
  EXPECT_TRUE(t.intervals().empty());
}

TEST(Tracer, IntervalsSortedByLaneThenStart) {
  Tracer t;
  t.record(1, Category::Compute, 2.0, 3.0);
  t.record(0, Category::Wait, 1.0, 2.0);
  t.record(0, Category::Compute, 0.0, 1.0);
  const auto ivs = t.intervals();
  ASSERT_EQ(ivs.size(), 3u);
  EXPECT_EQ(ivs[0].lane, 0);
  EXPECT_EQ(ivs[0].start, 0.0);
  EXPECT_EQ(ivs[1].start, 1.0);
  EXPECT_EQ(ivs[2].lane, 1);
}

TEST(Tracer, ZeroWidthIntervalsDropped) {
  Tracer t;
  t.record(0, Category::Compute, 1.0, 1.0);
  EXPECT_TRUE(t.intervals().empty());
}

TEST(Tracer, BackwardsIntervalDies) {
  Tracer t;
  EXPECT_DEATH(t.record(0, Category::Compute, 2.0, 1.0), "ends before");
}

TEST(Tracer, SummaryTotalsPerCategory) {
  Tracer t;
  t.record(0, Category::Compute, 0.0, 2.0);
  t.record(0, Category::Prefetch, 2.0, 3.0);
  t.record(1, Category::Compute, 0.0, 1.0);
  const auto s = t.summarize();
  EXPECT_DOUBLE_EQ(s.total_of(Category::Compute), 3.0);
  EXPECT_DOUBLE_EQ(s.total_of(Category::Prefetch), 1.0);
  EXPECT_EQ(s.count_of(Category::Compute), 2u);
  EXPECT_DOUBLE_EQ(s.span, 3.0);
  EXPECT_EQ(s.lanes, 2);
  EXPECT_NEAR(s.overhead_fraction(), 0.25, 1e-12);
}

TEST(Tracer, SummaryLaneFilter) {
  Tracer t;
  t.record(0, Category::Compute, 0.0, 1.0);
  t.record(5, Category::Prefetch, 0.0, 4.0); // an IO pseudo-lane
  const auto workers = t.summarize(/*worker_lanes=*/1);
  EXPECT_DOUBLE_EQ(workers.total_of(Category::Prefetch), 0.0);
  EXPECT_DOUBLE_EQ(workers.total_of(Category::Compute), 1.0);
}

TEST(Tracer, FillIdleCoversGaps) {
  Tracer t;
  t.record(0, Category::Compute, 1.0, 2.0);
  t.record(0, Category::Compute, 3.0, 4.0);
  t.fill_idle(0.0, 5.0);
  const auto s = t.summarize();
  // Gaps [0,1], [2,3], [4,5] -> 3 seconds idle.
  EXPECT_DOUBLE_EQ(s.total_of(Category::Idle), 3.0);
}

TEST(Tracer, CsvHasHeaderAndRows) {
  Tracer t;
  t.record(0, Category::Compute, 0.0, 1.5, 42);
  std::ostringstream os;
  t.write_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("lane,category,start,end,task"), std::string::npos);
  EXPECT_NE(out.find("0,compute,0,1.5,42"), std::string::npos);
}

TEST(Tracer, AsciiTimelineShowsDominantCategory) {
  Tracer t;
  t.record(0, Category::Compute, 0.0, 5.0);
  t.record(0, Category::Prefetch, 5.0, 10.0);
  std::ostringstream os;
  t.ascii_timeline(os, 10, 0.0, 10.0);
  const std::string out = os.str();
  EXPECT_NE(out.find("CCCCCPPPPP"), std::string::npos);
  EXPECT_NE(out.find("legend"), std::string::npos);
}

TEST(Tracer, ClearEmptiesLog) {
  Tracer t;
  t.record(0, Category::Compute, 0.0, 1.0);
  t.clear();
  EXPECT_TRUE(t.intervals().empty());
}

TEST(Tracer, CopyFallbacksFlowIntoSummaryAndCsvTrailer) {
  Tracer t;
  t.record(0, Category::Compute, 0.0, 1.0);
  EXPECT_EQ(t.summarize().ring_fallbacks, 0u);
  t.note_copy_fallbacks(3);
  EXPECT_EQ(t.copy_fallbacks(), 3u);
  EXPECT_EQ(t.summarize().ring_fallbacks, 3u);
  EXPECT_EQ(t.summarize(-1, 0.0, 1.0).ring_fallbacks, 3u);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_NE(os.str().find("# ring_fallbacks=3"), std::string::npos);
}

TEST(Tracer, CategoryNamesAndGlyphs) {
  EXPECT_STREQ(category_name(Category::Evict), "evict");
  EXPECT_EQ(category_glyph(Category::Wait), 'w');
  EXPECT_EQ(category_glyph(Category::Idle), '.');
}

} // namespace
} // namespace hmr::trace
