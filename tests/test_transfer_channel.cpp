// Tests for the fluid-flow TransferChannel model.

#include <gtest/gtest.h>

#include <cmath>

#include "sim/transfer_channel.hpp"

namespace hmr::sim {
namespace {

TEST(TransferChannel, SingleFlowRunsAtPerFlowRate) {
  TransferChannel ch(/*per_flow=*/10.0, /*aggregate=*/40.0);
  ch.add_flow(1, 100.0, 0.0);
  EXPECT_DOUBLE_EQ(ch.current_rate(), 10.0);
  EXPECT_DOUBLE_EQ(ch.next_completion(0.0), 10.0);
  auto done = ch.advance(10.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 1u);
  EXPECT_FALSE(ch.has_flows());
}

TEST(TransferChannel, ManyFlowsShareAggregate) {
  TransferChannel ch(10.0, 40.0);
  // 8 flows: fair share 5 < per-flow 10.
  for (std::uint64_t i = 0; i < 8; ++i) ch.add_flow(i, 100.0, 0.0);
  EXPECT_DOUBLE_EQ(ch.current_rate(), 5.0);
  EXPECT_DOUBLE_EQ(ch.next_completion(0.0), 20.0);
}

TEST(TransferChannel, RateRisesAsFlowsComplete) {
  TransferChannel ch(10.0, 40.0);
  ch.add_flow(1, 50.0, 0.0);
  ch.add_flow(2, 200.0, 0.0);
  // Two flows at 10 each (per-flow bound, 2*10 < 40).
  EXPECT_DOUBLE_EQ(ch.current_rate(), 10.0);
  auto done = ch.advance(5.0); // flow 1 completes
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 1u);
  // Flow 2 has 150 left at rate 10 -> completes at t=20.
  EXPECT_DOUBLE_EQ(ch.next_completion(5.0), 20.0);
}

TEST(TransferChannel, LateJoinerSlowsEveryone) {
  TransferChannel ch(10.0, 15.0);
  ch.add_flow(1, 100.0, 0.0);
  (void)ch.advance(4.0); // flow 1 at 60 remaining
  ch.add_flow(2, 60.0, 4.0);
  // Two flows share 15 -> 7.5 each; both complete at 4 + 60/7.5 = 12.
  EXPECT_DOUBLE_EQ(ch.current_rate(), 7.5);
  auto done = ch.advance(12.0);
  EXPECT_EQ(done.size(), 2u);
}

TEST(TransferChannel, GenerationBumpsOnChange) {
  TransferChannel ch(10.0, 40.0);
  const auto g0 = ch.generation();
  ch.add_flow(1, 10.0, 0.0);
  const auto g1 = ch.generation();
  EXPECT_NE(g0, g1);
  (void)ch.advance(0.5); // no completion: no bump
  EXPECT_EQ(ch.generation(), g1);
  (void)ch.advance(1.0); // completion: bump
  EXPECT_NE(ch.generation(), g1);
}

TEST(TransferChannel, IdleChannelReportsInfinity)
{
  TransferChannel ch(10.0, 40.0);
  (void)ch.advance(3.0);
  EXPECT_TRUE(std::isinf(ch.next_completion(3.0)));
}

TEST(TransferChannel, ConservesWork) {
  // Total bytes delivered over time never exceeds aggregate * elapsed.
  TransferChannel ch(10.0, 25.0);
  double t = 0;
  double injected = 0;
  std::uint64_t id = 0;
  double completed_bytes = 0;
  const double sizes[] = {30, 70, 20, 120, 55, 10, 90, 40};
  std::vector<double> remaining_at_add;
  for (double sz : sizes) {
    (void)ch.advance(t);
    ch.add_flow(id++, sz, t);
    injected += sz;
    t += 1.0;
  }
  // Drain to the end.
  while (ch.has_flows()) {
    (void)ch.advance(t);
    const double next = ch.next_completion(t);
    auto done = ch.advance(next);
    for (auto f : done) {
      (void)f;
      completed_bytes += 0; // sizes accounted via injected below
    }
    t = next;
  }
  // All bytes must have been delivered by time t, and the channel can
  // not have moved them faster than the aggregate cap allows.
  EXPECT_GE(t * 25.0, injected - 1e-6);
}

TEST(TransferChannel, AddWithoutAdvanceDies) {
  TransferChannel ch(10.0, 40.0);
  ch.add_flow(1, 10.0, 0.0);
  EXPECT_DEATH(ch.add_flow(2, 10.0, 5.0), "without advancing");
}

TEST(TransferChannel, DuplicateFlowDies) {
  TransferChannel ch(10.0, 40.0);
  ch.add_flow(1, 10.0, 0.0);
  EXPECT_DEATH(ch.add_flow(1, 10.0, 0.0), "duplicate");
}

TEST(TransferChannel, BackwardsAdvanceDies) {
  TransferChannel ch(10.0, 40.0);
  (void)ch.advance(5.0);
  EXPECT_DEATH((void)ch.advance(4.0), "backwards");
}

} // namespace
} // namespace hmr::sim
