// Unit tests for hmr utility helpers: stats, csv, argparse, rng, units,
// tables.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/argparse.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace hmr {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5, 5);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> v{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
}

TEST(Csv, EscapesSpecials) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, RowShape) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"name", "value"});
  w.field(std::string_view("x")).field(1.5);
  w.end_row();
  EXPECT_EQ(os.str(), "name,value\nx,1.5\n");
}

TEST(Csv, RowWidthMismatchDies) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"a", "b"});
  w.field(std::string_view("only-one"));
  EXPECT_DEATH(w.end_row(), "row width");
}

TEST(ArgParse, ParsesAllKinds) {
  bool flag = false;
  std::int64_t n = 0;
  std::uint64_t u = 0;
  double d = 0;
  std::string s;
  ArgParser p("prog", "test");
  p.add_flag("flag", "a bool", &flag);
  p.add_flag("n", "an int", &n);
  p.add_flag("u", "a uint", &u);
  p.add_flag("d", "a double", &d);
  p.add_flag("s", "a string", &s);
  const char* argv[] = {"prog", "--flag",   "--n", "-3", "--u=42",
                        "--d",  "2.5",      "--s", "hello"};
  ASSERT_TRUE(p.parse(9, argv));
  EXPECT_TRUE(flag);
  EXPECT_EQ(n, -3);
  EXPECT_EQ(u, 42u);
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_EQ(s, "hello");
}

TEST(ArgParse, RejectsUnknownFlag) {
  ArgParser p("prog", "test");
  const char* argv[] = {"prog", "--nope"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(ArgParse, RejectsBadValue) {
  std::int64_t n = 0;
  ArgParser p("prog", "test");
  p.add_flag("n", "an int", &n);
  const char* argv[] = {"prog", "--n", "abc"};
  EXPECT_FALSE(p.parse(3, argv));
}

TEST(ArgParse, RejectsNegativeUint) {
  std::uint64_t u = 0;
  ArgParser p("prog", "test");
  p.add_flag("u", "a uint", &u);
  const char* argv[] = {"prog", "--u", "-1"};
  EXPECT_FALSE(p.parse(3, argv));
}

TEST(ArgParse, MissingValueFails) {
  double d = 0;
  ArgParser p("prog", "test");
  p.add_flag("d", "a double", &d);
  const char* argv[] = {"prog", "--d"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(123), b(123), c(124);
  bool all_equal = true, any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a(), vb = b(), vc = c();
    all_equal &= (va == vb);
    any_diff |= (va != vc);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowIsInRange) {
  Xoshiro256 r(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.below(7), 7u);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 r(11);
  double lo = 1, hi = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
  // With 10k samples the empirical range should cover most of [0,1).
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Units, FormatsBytes) {
  EXPECT_EQ(fmt_bytes(512), "512 B");
  EXPECT_EQ(fmt_bytes(16 * GiB), "16.0 GiB");
  EXPECT_EQ(fmt_bytes(1536), "1.5 KiB");
}

TEST(Units, FormatsSeconds) {
  EXPECT_EQ(fmt_seconds(1.5), "1.500 s");
  EXPECT_EQ(fmt_seconds(0.0123), "12.300 ms");
  EXPECT_EQ(fmt_seconds(4.2e-6), "4.200 us");
}

TEST(Table, AlignsColumns) {
  TextTable t({"name", "v"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name    v"), std::string::npos);
  EXPECT_NE(out.find("longer  22"), std::string::npos);
}

TEST(Table, RowWidthMismatchDies) {
  TextTable t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

TEST(Strfmt, FormatsLikePrintf) {
  EXPECT_EQ(strfmt("%d/%0.2f/%s", 3, 1.5, "x"), "3/1.50/x");
}

} // namespace
} // namespace hmr
