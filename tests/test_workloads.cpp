// Tests for the workload generators (Stencil3D, MatMul, Synthetic).

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "sim/matmul_workload.hpp"
#include "sim/stencil_workload.hpp"
#include "sim/synthetic_workload.hpp"
#include "util/units.hpp"

namespace hmr::sim {
namespace {

TEST(StencilWorkload, BlockAccounting) {
  StencilWorkload w({.total_bytes = 64 * MiB,
                     .num_chares = 64,
                     .num_pes = 8,
                     .iterations = 3});
  EXPECT_EQ(w.interior_bytes(), 1 * MiB);
  // 7 blocks per chare (1 interior + 6 ghosts).
  EXPECT_EQ(w.blocks().size(), 64u * 7);
  // Ghost face of a 1 MiB cube: (2^17 elems)^(2/3) * 8 bytes ~ 20 KiB.
  EXPECT_GT(w.ghost_bytes(), 8 * KiB);
  EXPECT_LT(w.ghost_bytes(), 64 * KiB);
  EXPECT_GT(w.total_bytes(), 64 * MiB); // ghosts add on top
}

TEST(StencilWorkload, TasksHaveSevenIndependentDeps) {
  StencilWorkload w({.total_bytes = 8 * MiB,
                     .num_chares = 8,
                     .num_pes = 4,
                     .iterations = 2});
  const auto tasks = w.iteration_tasks(0);
  ASSERT_EQ(tasks.size(), 8u);
  std::set<ooc::BlockId> all_deps;
  for (const auto& t : tasks) {
    ASSERT_EQ(t.deps.size(), 7u);
    EXPECT_EQ(t.deps[0].mode, ooc::AccessMode::ReadWrite);
    for (std::size_t i = 1; i < 7; ++i) {
      EXPECT_EQ(t.deps[i].mode, ooc::AccessMode::ReadOnly);
    }
    for (const auto& d : t.deps) all_deps.insert(d.block);
  }
  // No block sharing across stencil chares (paper §V-A).
  EXPECT_EQ(all_deps.size(), 8u * 7);
}

TEST(StencilWorkload, TaskIdsUniqueAcrossIterations) {
  StencilWorkload w({.total_bytes = 8 * MiB,
                     .num_chares = 8,
                     .num_pes = 4,
                     .iterations = 3});
  std::unordered_set<ooc::TaskId> ids;
  for (int it = 0; it < 3; ++it) {
    for (const auto& t : w.iteration_tasks(it)) {
      EXPECT_TRUE(ids.insert(t.id).second);
    }
  }
}

TEST(StencilWorkload, PeMappingStableAndBalanced) {
  StencilWorkload w({.total_bytes = 32 * MiB,
                     .num_chares = 32,
                     .num_pes = 8,
                     .iterations = 2});
  const auto t0 = w.iteration_tasks(0);
  const auto t1 = w.iteration_tasks(1);
  std::vector<int> per_pe(8, 0);
  for (std::size_t i = 0; i < t0.size(); ++i) {
    EXPECT_EQ(t0[i].pe, t1[i].pe); // chares do not migrate
    ++per_pe[static_cast<std::size_t>(t0[i].pe)];
  }
  for (int n : per_pe) EXPECT_EQ(n, 4);
}

TEST(StencilWorkload, ParamsForReducedHitsTarget) {
  const auto p = StencilWorkload::params_for_reduced(
      32 * GiB, 2 * GiB, /*num_pes=*/64);
  StencilWorkload w(p);
  const auto reduced = w.reduced_bytes(64);
  // Within 25% of the requested reduced working set (ghosts inflate).
  EXPECT_GT(reduced, 2 * GiB * 3 / 4);
  EXPECT_LT(reduced, 2 * GiB * 5 / 4 + 64 * w.ghost_bytes() * 6);
  EXPECT_NEAR(static_cast<double>(w.params().total_bytes),
              static_cast<double>(32 * GiB), 1e-6 * 32 * GiB);
}

TEST(MatmulWorkload, BlockLayout) {
  MatmulWorkload w({.n = 64, .grid = 4, .num_pes = 4});
  EXPECT_EQ(w.tile_bytes(), 16u * 16 * 8);
  EXPECT_EQ(w.panel_bytes(), 16u * 64 * 8);
  // G A-row panels + G B-column panels + G^2 C tiles, ids interleaved
  // per grid row: [Arow_i, Bcol_i, C_i0..C_i,G-1].
  EXPECT_EQ(w.blocks().size(), 4u + 4 + 16);
  EXPECT_EQ(w.a_row(2), 12u);
  EXPECT_EQ(w.b_col(2), 13u);
  EXPECT_EQ(w.c_block(1, 2), 6u + 2 + 2);
  // Ids are dense and ascending (the executors rely on it).
  for (std::size_t i = 0; i < w.blocks().size(); ++i) {
    EXPECT_EQ(w.blocks()[i].id, i);
  }
  // Total bytes = A + B + C = 3 n^2 * 8.
  EXPECT_EQ(w.total_bytes(), 3u * 64 * 64 * 8);
}

TEST(MatmulWorkload, TaskStructure) {
  MatmulWorkload w({.n = 64, .grid = 4, .num_pes = 4});
  const auto tasks = w.iteration_tasks(0);
  ASSERT_EQ(tasks.size(), 16u); // one task per chare (G^2)
  for (const auto& t : tasks) {
    ASSERT_EQ(t.deps.size(), 3u);
    EXPECT_EQ(t.deps[0].mode, ooc::AccessMode::ReadOnly);  // A row
    EXPECT_EQ(t.deps[1].mode, ooc::AccessMode::ReadOnly);  // B col
    EXPECT_EQ(t.deps[2].mode, ooc::AccessMode::ReadWrite); // C tile
  }
}

TEST(MatmulWorkload, RowMajorOrderSharesRowPanels) {
  MatmulWorkload w({.n = 64, .grid = 4, .num_pes = 4});
  const auto tasks = w.iteration_tasks(0);
  // First G tasks all read A row panel 0 (adjacent consumers).
  for (int j = 0; j < 4; ++j) {
    EXPECT_EQ(tasks[static_cast<std::size_t>(j)].deps[0].block, w.a_row(0));
    EXPECT_EQ(tasks[static_cast<std::size_t>(j)].deps[1].block, w.b_col(j));
  }
}

TEST(MatmulWorkload, SharingDegreeMatchesTheory) {
  MatmulWorkload w({.n = 64, .grid = 4, .num_pes = 4});
  std::unordered_map<ooc::BlockId, int> uses;
  for (const auto& t : w.iteration_tasks(0)) {
    for (const auto& d : t.deps) ++uses[d.block];
  }
  // Each A row / B column panel feeds G chares; each C tile one.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(uses[w.a_row(i)], 4);
    EXPECT_EQ(uses[w.b_col(i)], 4);
  }
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) EXPECT_EQ(uses[w.c_block(i, j)], 1);
  }
}

TEST(MatmulWorkload, ParamsForHitsTargets) {
  const auto p = MatmulWorkload::params_for(24 * GiB, 6 * GiB, 64);
  MatmulWorkload w(p);
  const double total = static_cast<double>(w.total_bytes());
  EXPECT_NEAR(total, static_cast<double>(24 * GiB), 0.15 * 24 * GiB);
  const double reduced = static_cast<double>(w.reduced_bytes(64));
  EXPECT_NEAR(reduced, static_cast<double>(6 * GiB), 0.20 * 6 * GiB);
}

TEST(SyntheticWorkload, DeterministicForSeed) {
  SyntheticWorkload::Params p;
  p.seed = 99;
  SyntheticWorkload a(p), b(p);
  const auto ta = a.iteration_tasks(0);
  const auto tb = b.iteration_tasks(0);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].pe, tb[i].pe);
    ASSERT_EQ(ta[i].deps.size(), tb[i].deps.size());
    for (std::size_t d = 0; d < ta[i].deps.size(); ++d) {
      EXPECT_EQ(ta[i].deps[d].block, tb[i].deps[d].block);
    }
  }
}

TEST(SyntheticWorkload, NoDuplicateDepsWithinTask) {
  SyntheticWorkload::Params p;
  p.num_blocks = 8;
  p.deps_per_task = 8; // forces heavy collision pressure
  p.reuse = 0.9;
  SyntheticWorkload w(p);
  for (const auto& t : w.iteration_tasks(0)) {
    std::set<ooc::BlockId> seen;
    for (const auto& d : t.deps) {
      EXPECT_TRUE(seen.insert(d.block).second);
    }
  }
}

TEST(SyntheticWorkload, ReuseRaisesBlockSharing) {
  SyntheticWorkload::Params lo;
  lo.num_blocks = 4096;
  lo.tasks_per_iteration = 512;
  lo.reuse = 0.0;
  SyntheticWorkload::Params hi = lo;
  hi.reuse = 0.9;
  auto distinct = [](const SyntheticWorkload& w) {
    std::set<ooc::BlockId> s;
    for (const auto& t : w.iteration_tasks(0)) {
      for (const auto& d : t.deps) s.insert(d.block);
    }
    return s.size();
  };
  EXPECT_GT(distinct(SyntheticWorkload(lo)),
            2 * distinct(SyntheticWorkload(hi)));
}

} // namespace
} // namespace hmr::sim
