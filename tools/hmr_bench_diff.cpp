// hmr_bench_diff: compare two BENCH_*.json files and gate on trend.
//
// The benches write structured results (BENCH_rt_contention.json,
// BENCH_abl_tier_cascade.json, ...) that CI has so far only uploaded.
// This tool turns them into a regression gate: flatten every numeric
// leaf of both files to a dotted path (array elements are keyed by
// their "name"/"config"/"bench" string member when they have one, so
// `configs.sharded.wall_s` stays stable when rows reorder), compare
// old vs new, and exit nonzero when a metric moved the wrong way by
// more than --tolerance.
//
// Direction is inferred from the metric name: throughput-ish names
// (per_sec, speedup, gbps) must not drop, latency-ish names (wall_s,
// total_s, lock_wait, contended, ctx_switches) must not grow, and
// everything else is treated as a deterministic count that must not
// move in either direction.  --only restricts the gate to a
// comma-separated list of path suffixes, which is how CI checks a
// wall-clock-noisy bench on its deterministic counters alone;
// --ignore drops matching suffixes from the gate (applied after
// --only), for host-dependent fields like hardware_threads that a
// baseline recorded on a different machine cannot pin down.
//
// Exit codes: 0 = within tolerance, 1 = usage/parse error,
// 2 = regression.

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "util/argparse.hpp"

namespace {

// ---- minimal JSON reader (objects/arrays/strings/numbers/literals),
// just enough for the benches' own writers; no dependency added ----

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind =
      Kind::Null;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<Value> arr;
  std::vector<std::pair<std::string, Value>> obj; // insertion order
};

class Parser {
public:
  Parser(const std::string& text, std::string* err)
      : s_(text), err_(err) {}

  bool parse(Value& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing garbage");
    return true;
  }

private:
  bool fail(const std::string& what) {
    if (err_ && err_->empty()) {
      *err_ = what + " at byte " + std::to_string(pos_);
    }
    return false;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  /// Four hex digits at pos_ -> code unit; advances past them.
  bool hex4(std::uint32_t& out) {
    if (pos_ + 4 > s_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = s_[pos_++];
      std::uint32_t d;
      if (h >= '0' && h <= '9') d = static_cast<std::uint32_t>(h - '0');
      else if (h >= 'a' && h <= 'f') d = static_cast<std::uint32_t>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') d = static_cast<std::uint32_t>(h - 'A' + 10);
      else return fail("bad hex digit in \\u escape");
      out = (out << 4) | d;
    }
    return true;
  }
  static void append_utf8(std::uint32_t cp, std::string& out) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }
  bool string(std::string& out) {
    if (s_[pos_] != '"') return fail("expected string");
    ++pos_;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return fail("bad escape");
        const char e = s_[pos_++];
        switch (e) {
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        case 'r': c = '\r'; break;
        case '"': case '\\': case '/': c = e; break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (pos_ + 2 > s_.size() || s_[pos_] != '\\' ||
                s_[pos_ + 1] != 'u') {
              return fail("unpaired surrogate in \\u escape");
            }
            pos_ += 2;
            std::uint32_t lo = 0;
            if (!hex4(lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return fail("unpaired surrogate in \\u escape");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired surrogate in \\u escape");
          }
          append_utf8(cp, out);
          continue;
        }
        default: return fail("unsupported escape");
        }
      }
      out.push_back(c);
    }
    if (pos_ >= s_.size()) return fail("unterminated string");
    ++pos_; // closing quote
    return true;
  }
  bool value(Value& out) {
    if (pos_ >= s_.size()) return fail("unexpected end");
    const char c = s_[pos_];
    if (c == '{') {
      out.kind = Value::Kind::Object;
      ++pos_;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == '}') { ++pos_; return true; }
      for (;;) {
        skip_ws();
        std::string key;
        if (!string(key)) return false;
        skip_ws();
        if (pos_ >= s_.size() || s_[pos_] != ':') {
          return fail("expected ':'");
        }
        ++pos_;
        skip_ws();
        Value v;
        if (!value(v)) return false;
        out.obj.emplace_back(std::move(key), std::move(v));
        skip_ws();
        if (pos_ >= s_.size()) return fail("unterminated object");
        if (s_[pos_] == ',') { ++pos_; continue; }
        if (s_[pos_] == '}') { ++pos_; return true; }
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      out.kind = Value::Kind::Array;
      ++pos_;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ']') { ++pos_; return true; }
      for (;;) {
        skip_ws();
        Value v;
        if (!value(v)) return false;
        out.arr.push_back(std::move(v));
        skip_ws();
        if (pos_ >= s_.size()) return fail("unterminated array");
        if (s_[pos_] == ',') { ++pos_; continue; }
        if (s_[pos_] == ']') { ++pos_; return true; }
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out.kind = Value::Kind::String;
      return string(out.str);
    }
    if (literal("true")) { out.kind = Value::Kind::Bool; out.b = true;
                           return true; }
    if (literal("false")) { out.kind = Value::Kind::Bool; return true; }
    if (literal("null")) { return true; }
    char* end = nullptr;
    const double d = std::strtod(s_.c_str() + pos_, &end);
    if (end == s_.c_str() + pos_) return fail("expected value");
    pos_ = static_cast<std::size_t>(end - s_.c_str());
    out.kind = Value::Kind::Number;
    out.num = d;
    return true;
  }

  const std::string& s_;
  std::string* err_;
  std::size_t pos_ = 0;
};

/// Stable key for an array element: a self-describing string member
/// beats a positional index, which changes meaning when rows reorder.
std::string element_key(const Value& v, std::size_t index) {
  if (v.kind == Value::Kind::Object) {
    for (const char* k : {"name", "config", "bench"}) {
      for (const auto& [key, member] : v.obj) {
        if (key == k && member.kind == Value::Kind::String) {
          return member.str;
        }
      }
    }
  }
  return std::to_string(index);
}

void flatten(const Value& v, const std::string& prefix,
             std::map<std::string, double>& out) {
  switch (v.kind) {
  case Value::Kind::Number:
    out[prefix] = v.num;
    break;
  case Value::Kind::Object:
    for (const auto& [key, member] : v.obj) {
      flatten(member, prefix.empty() ? key : prefix + "." + key, out);
    }
    break;
  case Value::Kind::Array:
    for (std::size_t i = 0; i < v.arr.size(); ++i) {
      const std::string key = element_key(v.arr[i], i);
      flatten(v.arr[i], prefix.empty() ? key : prefix + "." + key, out);
    }
    break;
  default:
    break; // strings/bools/null carry no trend to gate on
  }
}

bool load(const std::string& path, std::map<std::string, double>& out) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "hmr_bench_diff: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();
  std::string err;
  Value root;
  if (!Parser(text, &err).parse(root)) {
    std::fprintf(stderr, "hmr_bench_diff: %s: %s\n", path.c_str(),
                 err.c_str());
    return false;
  }
  flatten(root, "", out);
  return true;
}

enum class Direction { HigherBetter, LowerBetter, Exact };

bool contains_any(const std::string& s,
                  std::initializer_list<const char*> tokens) {
  for (const char* t : tokens) {
    if (s.find(t) != std::string::npos) return true;
  }
  return false;
}

Direction direction_of(const std::string& path) {
  // Classify by the leaf name only: a config called "throughput" must
  // not drag every metric under it into higher-is-better.
  const std::size_t dot = path.rfind('.');
  const std::string leaf =
      dot == std::string::npos ? path : path.substr(dot + 1);
  if (contains_any(leaf, {"per_sec", "speedup", "gbps"})) {
    return Direction::HigherBetter;
  }
  if (contains_any(leaf, {"wall_s", "total_s", "mono_s", "chunked_s",
                          "wait", "contended", "ctx_switches"})) {
    return Direction::LowerBetter;
  }
  return Direction::Exact; // deterministic count: no move allowed
}

/// Suffix match on the dotted path (shared by --only and --ignore):
/// "tasks" or ".tasks" matches `configs.global.tasks` but not
/// `tasks_per_sec` (the match must start at a path-component
/// boundary).
bool matches_any(const std::string& path,
                 const std::vector<std::string>& pats) {
  for (const std::string& pat : pats) {
    const std::string p = pat.front() == '.' ? pat.substr(1) : pat;
    if (path == p) return true;
    if (path.size() > p.size() &&
        path.compare(path.size() - p.size(), p.size(), p) == 0 &&
        path[path.size() - p.size() - 1] == '.') {
      return true;
    }
  }
  return false;
}

bool selected(const std::string& path, const std::vector<std::string>& only,
              const std::vector<std::string>& ignore) {
  if (!only.empty() && !matches_any(path, only)) return false;
  return !matches_any(path, ignore);
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

} // namespace

int main(int argc, char** argv) {
  std::string old_path, new_path, only_arg, ignore_arg;
  double tolerance = 0.10;
  hmr::ArgParser ap("hmr_bench_diff",
                    "Compare two BENCH_*.json files and fail on metric "
                    "regressions beyond --tolerance.");
  ap.add_flag("old", "baseline BENCH_*.json", &old_path);
  ap.add_flag("new", "candidate BENCH_*.json", &new_path);
  ap.add_flag("tolerance",
              "allowed relative drift (0.10 = 10%)", &tolerance);
  ap.add_flag("only",
              "comma-separated path suffixes to gate on (default: all)",
              &only_arg);
  ap.add_flag("ignore",
              "comma-separated path suffixes to exclude from the gate "
              "(host-dependent fields like hardware_threads)",
              &ignore_arg);
  if (!ap.parse(argc, argv)) return 1;
  if (old_path.empty() || new_path.empty()) {
    std::fprintf(stderr, "hmr_bench_diff: --old and --new are required\n%s",
                 ap.usage().c_str());
    return 1;
  }

  std::map<std::string, double> oldm, newm;
  if (!load(old_path, oldm) || !load(new_path, newm)) return 1;
  const std::vector<std::string> only = split_commas(only_arg);
  const std::vector<std::string> ignore = split_commas(ignore_arg);

  int regressions = 0;
  int checked = 0;
  for (const auto& [path, oldv] : oldm) {
    if (!selected(path, only, ignore)) continue;
    const auto it = newm.find(path);
    if (it == newm.end()) {
      std::printf("%-52s %14.6g %14s  REGRESSION (metric disappeared)\n",
                  path.c_str(), oldv, "-");
      ++regressions;
      continue;
    }
    ++checked;
    const double newv = it->second;
    const double delta =
        oldv != 0 ? (newv - oldv) / std::fabs(oldv)
                  : (newv == 0 ? 0 : std::copysign(HUGE_VAL, newv));
    bool bad = false;
    switch (direction_of(path)) {
    case Direction::HigherBetter: bad = delta < -tolerance; break;
    case Direction::LowerBetter: bad = delta > tolerance; break;
    case Direction::Exact: bad = std::fabs(delta) > tolerance; break;
    }
    std::printf("%-52s %14.6g %14.6g  %+7.2f%%%s\n", path.c_str(), oldv,
                newv, delta * 100, bad ? "  REGRESSION" : "");
    if (bad) ++regressions;
  }
  for (const auto& [path, newv] : newm) {
    if (oldm.count(path) == 0 && selected(path, only, ignore)) {
      std::printf("%-52s %14s %14.6g  (new metric, not gated)\n",
                  path.c_str(), "-", newv);
    }
  }
  if (checked == 0 && regressions == 0) {
    std::fprintf(stderr,
                 "hmr_bench_diff: --only matched no metric in %s\n",
                 old_path.c_str());
    return 1;
  }
  if (regressions > 0) {
    std::printf("%d regression(s) beyond %.0f%% tolerance\n", regressions,
                tolerance * 100);
    return 2;
  }
  std::printf("ok: %d metric(s) within %.0f%% tolerance\n", checked,
              tolerance * 100);
  return 0;
}
