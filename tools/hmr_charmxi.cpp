// hmr-charmxi: the interface-translator half of the paper's toolchain.
//
// Reads a Charm++ .ci interface file with the paper's [prefetch] and
// data-dependence annotations (from a path argument or stdin), checks
// it, and prints either a parse summary or the generated
// pre/post-processing stubs (paper SIV-B: "Preprocessing and
// post-processing methods corresponding to [prefetch] type entry
// method is generated as part of charmxi tool's autogeneration").
//
//   hmr_charmxi stencil.ci            # summary
//   hmr_charmxi --stubs stencil.ci    # generated code skeletons
//   cat stencil.ci | hmr_charmxi -    # read from stdin

#include <fstream>
#include <iostream>
#include <sstream>

#include "rt/ci_parser.hpp"

int main(int argc, char** argv) {
  using namespace hmr;
  bool stubs = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stubs") {
      stubs = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: hmr_charmxi [--stubs] <file.ci | ->\n";
      return 0;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    std::cerr << "hmr_charmxi: no input (try --help)\n";
    return 1;
  }

  std::string source;
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    source = ss.str();
  } else {
    std::ifstream f(path);
    if (!f) {
      std::cerr << "hmr_charmxi: cannot open " << path << "\n";
      return 1;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    source = ss.str();
  }

  const auto r = rt::parse_ci(source);
  if (!r) {
    std::cerr << path << ":" << r.line << ":" << r.column << ": error: "
              << r.error << "\n";
    return 1;
  }

  if (stubs) {
    for (const auto& m : r.file->modules) {
      std::cout << rt::generate_stubs(m);
    }
    return 0;
  }

  for (const auto& m : r.file->modules) {
    std::cout << "module " << m.name << "\n";
    for (const auto& e : m.entries) {
      std::cout << "  entry " << e.name
                << (e.prefetch ? "  [prefetch]" : "") << "\n";
      for (const auto& d : e.deps) {
        std::cout << "    " << ooc::access_mode_name(d.mode) << ": "
                  << d.name << "\n";
      }
    }
  }
  return 0;
}
