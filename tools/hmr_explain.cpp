// hmr_explain: offline bottleneck explainer.
//
// Reads a trace dump — the Tracer CSV (trace::Tracer::write_csv) or
// the Perfetto JSON hmr_trace/--perfetto writes — extracts the
// critical path (telemetry::critical_path), classifies the run
// (bandwidth-bound / latency-bound / message-rate-bound /
// compute-bound) and re-costs the path under a set of hypothetical
// hardware deltas (telemetry::whatif).
//
//   hmr_explain --in trace.csv --model three_tier
//   hmr_explain --perfetto trace.json --model knl --whatif
//   hmr_explain --in trace.csv --json        # machine-readable report
//
// The verdict taxonomy and what-if methodology are documented in
// docs/OBSERVABILITY.md §10.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "hw/machine_model.hpp"
#include "telemetry/critpath.hpp"
#include "trace/tracer.hpp"
#include "util/argparse.hpp"
#include "util/json.hpp"
#include "util/units.hpp"

namespace {

using hmr::trace::Category;
using hmr::trace::Interval;

bool parse_category(const std::string& s, Category& out) {
  for (int c = 0; c < 6; ++c) {
    if (s == hmr::trace::category_name(static_cast<Category>(c))) {
      out = static_cast<Category>(c);
      return true;
    }
  }
  return false;
}

std::vector<std::string> split(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (const char ch : line) {
    if (ch == ',') {
      out.push_back(cur);
      cur.clear();
    } else if (ch != '\r') {
      cur.push_back(ch);
    }
  }
  out.push_back(cur);
  return out;
}

bool read_csv(std::istream& is, std::vector<Interval>& out) {
  std::string line;
  if (!std::getline(is, line)) {
    std::fprintf(stderr, "hmr_explain: empty input\n");
    return false;
  }
  if (split(line) !=
      std::vector<std::string>{"lane", "category", "start", "end", "task",
                               "src_tier", "dst_tier", "bytes"}) {
    std::fprintf(stderr, "hmr_explain: unrecognized header: %s\n",
                 line.c_str());
    return false;
  }
  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    const auto f = split(line);
    Interval iv;
    if (f.size() != 8 || !parse_category(f[1], iv.cat)) {
      std::fprintf(stderr, "hmr_explain: bad row at line %zu\n", lineno);
      return false;
    }
    try {
      iv.lane = std::stoi(f[0]);
      iv.start = std::stod(f[2]);
      iv.end = std::stod(f[3]);
      iv.task = std::stoull(f[4]);
      iv.src_tier = static_cast<std::uint32_t>(std::stoul(f[5]));
      iv.dst_tier = static_cast<std::uint32_t>(std::stoul(f[6]));
      iv.bytes = std::stoull(f[7]);
    } catch (const std::exception&) {
      std::fprintf(stderr, "hmr_explain: bad row at line %zu\n", lineno);
      return false;
    }
    out.push_back(iv);
  }
  return true;
}

/// Rebuild intervals from the Perfetto JSON our own tools emit:
/// "X" (complete) duration events with ts/dur in microseconds and the
/// category name as the event name; migrations carry src_tier /
/// dst_tier / bytes in args.  Metadata and flow events are skipped.
bool read_perfetto(const std::string& text, std::vector<Interval>& out) {
  hmr::json::Value doc;
  std::string err;
  if (!hmr::json::parse(text, doc, &err)) {
    std::fprintf(stderr, "hmr_explain: bad perfetto JSON: %s\n",
                 err.c_str());
    return false;
  }
  const hmr::json::Value* evs = doc.find("traceEvents");
  if (evs == nullptr || !evs->is_array()) {
    std::fprintf(stderr, "hmr_explain: no traceEvents array\n");
    return false;
  }
  for (const auto& e : evs->arr) {
    const hmr::json::Value* ph = e.find("ph");
    if (ph == nullptr || ph->str_or("") != "X") continue;
    Interval iv;
    if (!parse_category(e.find("name") ? e.find("name")->str_or("") : "",
                        iv.cat)) {
      continue; // not one of ours (custom slice); skip
    }
    const double ts = e.find("ts") ? e.find("ts")->num_or(0) : 0;
    const double dur = e.find("dur") ? e.find("dur")->num_or(0) : 0;
    iv.start = ts * 1e-6;
    iv.end = (ts + dur) * 1e-6;
    iv.lane = static_cast<std::int32_t>(
        e.find("tid") ? e.find("tid")->num_or(0) : 0);
    if (const auto* args = e.find("args")) {
      if (const auto* t = args->find("task")) {
        iv.task = static_cast<std::uint64_t>(t->num_or(0));
      }
      if (const auto* s = args->find("src_tier")) {
        iv.src_tier = static_cast<std::uint32_t>(s->num_or(0));
      }
      if (const auto* d = args->find("dst_tier")) {
        iv.dst_tier = static_cast<std::uint32_t>(d->num_or(0));
      }
      if (const auto* b = args->find("bytes")) {
        iv.bytes = static_cast<std::uint64_t>(b->num_or(0));
      }
    }
    out.push_back(iv);
  }
  return true;
}

bool resolve_model(const std::string& name, hmr::hw::MachineModel& out) {
  if (name == "knl") {
    out = hmr::hw::knl_flat_all_to_all();
  } else if (name == "three_tier") {
    out = hmr::hw::three_tier_hbm_ddr_nvm();
  } else if (name == "spr") {
    out = hmr::hw::spr_hbm_flat();
  } else if (name == "exascale") {
    out = hmr::hw::exascale_near_far();
  } else {
    return false;
  }
  return true;
}

std::string pair_name(const hmr::hw::MachineModel* m, std::uint32_t src,
                      std::uint32_t dst) {
  char buf[96];
  if (m != nullptr && src < m->tiers.size() && dst < m->tiers.size()) {
    std::snprintf(buf, sizeof buf, "%s -> %s",
                  m->tiers[src].name.c_str(), m->tiers[dst].name.c_str());
  } else {
    std::snprintf(buf, sizeof buf, "tier %u -> %u", src, dst);
  }
  return buf;
}

std::vector<hmr::telemetry::HwDelta> default_deltas() {
  using hmr::telemetry::HwDelta;
  HwDelta fast2x;
  fast2x.name = "2x fast-tier bandwidth";
  fast2x.fast_bw_scale = 2.0;
  HwDelta remote;
  remote.name = "halved remote latency";
  remote.remote_latency_scale = 0.5;
  HwDelta remote_bw;
  remote_bw.name = "2x remote bandwidth";
  remote_bw.remote_bw_scale = 2.0;
  HwDelta compute;
  compute.name = "2x compute throughput";
  compute.compute_scale = 2.0;
  return {fast2x, remote, remote_bw, compute};
}

void json_escape(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else {
      out.push_back(c);
    }
  }
}

} // namespace

int main(int argc, char** argv) {
  std::string in;
  std::string perfetto;
  std::string model_name;
  bool whatif = false;
  bool json = false;
  std::int64_t top = 5;

  hmr::ArgParser args(
      "hmr_explain",
      "Explain a trace's bottleneck: critical path, phase verdict and "
      "what-if hardware re-costing");
  args.add_flag("in", "trace CSV (from Tracer::write_csv)", &in);
  args.add_flag("perfetto",
                "read a Perfetto JSON trace instead of the CSV", &perfetto);
  args.add_flag("model",
                "machine model for analytic verdicts and what-if "
                "(knl | three_tier | spr | exascale)",
                &model_name);
  args.add_flag("whatif",
                "re-cost the critical path under the built-in hardware "
                "deltas (needs --model)",
                &whatif);
  args.add_flag("json", "machine-readable report to stdout", &json);
  args.add_flag("top", "tier pairs / channels to list", &top);
  if (!args.parse(argc, argv)) return 1;

  if (in.empty() == perfetto.empty()) {
    std::fprintf(stderr,
                 "hmr_explain: exactly one of --in / --perfetto is "
                 "required\n%s",
                 args.usage().c_str());
    return 1;
  }

  std::vector<Interval> ivs;
  if (!in.empty()) {
    std::ifstream ifs(in);
    if (!ifs) {
      std::fprintf(stderr, "hmr_explain: cannot open %s\n", in.c_str());
      return 1;
    }
    if (!read_csv(ifs, ivs)) return 1;
  } else {
    std::ifstream ifs(perfetto);
    if (!ifs) {
      std::fprintf(stderr, "hmr_explain: cannot open %s\n",
                   perfetto.c_str());
      return 1;
    }
    std::ostringstream text;
    text << ifs.rdbuf();
    if (!read_perfetto(text.str(), ivs)) return 1;
  }
  if (ivs.empty()) {
    std::fprintf(stderr, "hmr_explain: no intervals in input\n");
    return 1;
  }

  hmr::hw::MachineModel model;
  const hmr::hw::MachineModel* mp = nullptr;
  if (!model_name.empty()) {
    if (!resolve_model(model_name, model)) {
      std::fprintf(stderr,
                   "hmr_explain: unknown model '%s' (knl | three_tier | "
                   "spr | exascale)\n",
                   model_name.c_str());
      return 1;
    }
    mp = &model;
  }
  if (whatif && mp == nullptr) {
    std::fprintf(stderr, "hmr_explain: --whatif needs --model\n");
    return 1;
  }

  const auto cp = hmr::telemetry::critical_path(ivs);
  const auto verdict = hmr::telemetry::classify(cp, mp);

  std::vector<std::pair<std::string, hmr::telemetry::WhatIfResult>> wis;
  if (whatif) {
    for (const auto& d : default_deltas()) {
      wis.emplace_back(d.name, hmr::telemetry::whatif(cp, *mp, d));
    }
  }

  const auto topn = static_cast<std::size_t>(top < 0 ? 0 : top);
  auto pairs = cp.pairs;
  std::sort(pairs.begin(), pairs.end(),
            [](const auto& a, const auto& b) {
              return a.seconds > b.seconds;
            });
  if (pairs.size() > topn) pairs.resize(topn);

  if (json) {
    std::string reason;
    json_escape(reason, verdict.reason);
    std::printf("{\"intervals\":%zu,\"makespan_s\":%.9f,\"steps\":%zu,"
                "\"step_coverage\":%.6f,\"gap_s\":%.9f,\"categories\":{",
                ivs.size(), cp.makespan(), cp.steps.size(),
                cp.step_coverage(), cp.gap_seconds);
    for (int c = 0; c < 6; ++c) {
      std::printf("%s\"%s\":%.9f", c ? "," : "",
                  hmr::trace::category_name(static_cast<Category>(c)),
                  cp.cat_seconds[c]);
    }
    std::printf("},\"pairs\":[");
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const auto& p = pairs[i];
      std::printf("%s{\"src_tier\":%u,\"dst_tier\":%u,\"seconds\":%.9f,"
                  "\"bytes\":%llu,\"count\":%llu}",
                  i ? "," : "", p.src, p.dst, p.seconds,
                  static_cast<unsigned long long>(p.bytes),
                  static_cast<unsigned long long>(p.count));
    }
    std::printf("],\"verdict\":\"%s\",\"reason\":\"%s\","
                "\"bandwidth_s\":%.9f,\"latency_s\":%.9f,"
                "\"msgrate_s\":%.9f,\"whatif\":[",
                hmr::telemetry::verdict_name(verdict.verdict),
                reason.c_str(), verdict.bandwidth_seconds,
                verdict.latency_seconds, verdict.msgrate_seconds);
    for (std::size_t i = 0; i < wis.size(); ++i) {
      std::string nm;
      json_escape(nm, wis[i].first);
      std::printf("%s{\"delta\":\"%s\",\"predicted_s\":%.9f,"
                  "\"speedup\":%.6f}",
                  i ? "," : "", nm.c_str(), wis[i].second.predicted_seconds,
                  wis[i].second.speedup);
    }
    std::printf("]}\n");
    return 0;
  }

  std::printf("%zu intervals, makespan %.6f s\n", ivs.size(),
              cp.makespan());
  std::printf("critical path: %zu steps covering %.1f%% of the makespan "
              "(%.6f s steps, %.6f s gaps)\n",
              cp.steps.size(), cp.step_coverage() * 100, cp.step_seconds,
              cp.gap_seconds);
  std::printf("\n%-10s %14s %8s\n", "category", "path-seconds", "share");
  const double m = cp.makespan() > 0 ? cp.makespan() : 1;
  for (int c = 0; c < 6; ++c) {
    if (cp.cat_seconds[c] <= 0) continue;
    std::printf("%-10s %14.6f %7.1f%%\n",
                hmr::trace::category_name(static_cast<Category>(c)),
                cp.cat_seconds[c], cp.cat_seconds[c] / m * 100);
  }
  if (cp.gap_seconds > 0) {
    std::printf("%-10s %14.6f %7.1f%%\n", "(gaps)", cp.gap_seconds,
                cp.gap_seconds / m * 100);
  }
  if (!pairs.empty()) {
    std::printf("\n%-28s %12s %10s %8s %14s\n", "channel on path", "bytes",
                "copies", "seconds", "effective b/w");
    for (const auto& p : pairs) {
      std::printf("%-28s %12s %10llu %8.4f %14s\n",
                  pair_name(mp, p.src, p.dst).c_str(),
                  hmr::fmt_bytes(p.bytes).c_str(),
                  static_cast<unsigned long long>(p.count), p.seconds,
                  p.seconds > 0
                      ? hmr::fmt_bandwidth(static_cast<double>(p.bytes) /
                                           p.seconds)
                            .c_str()
                      : "-");
    }
  }
  std::printf("\nverdict: %s\n  %s\n",
              hmr::telemetry::verdict_name(verdict.verdict),
              verdict.reason.c_str());
  std::printf("  migration split: bandwidth %.6f s, latency %.6f s, "
              "message-rate %.6f s\n",
              verdict.bandwidth_seconds, verdict.latency_seconds,
              verdict.msgrate_seconds);
  if (!wis.empty()) {
    std::printf("\nwhat-if (re-costed critical path):\n");
    for (const auto& [name, r] : wis) {
      std::printf("  %-26s predicted %.6f s (%.2fx speedup)\n",
                  name.c_str(), r.predicted_seconds, r.speedup);
    }
  }
  return 0;
}
