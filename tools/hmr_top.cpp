// hmr_top: terminal dashboard over a running runtime's StatusServer.
//
// Polls /status (+ /history for sparklines) on the loopback status
// port and renders per-PE queue/liveness bars, tier occupancy with a
// recent-history sparkline, the top-N hottest blocks the profiler is
// tracking, the governor's current decision, and any active watchdog
// alert.  One binary, no dependencies beyond the repo's JSON reader —
// `watch`-style refresh by default, a single frame with --once, and a
// fully offline mode (--from / --history-file) for tests and for
// inspecting saved snapshots.
//
//   hmr_top --port 8791
//   hmr_top --port 8791 --once
//   hmr_top --from status.json --history-file history.json --once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <cerrno>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/argparse.hpp"
#include "util/json.hpp"
#include "util/units.hpp"

namespace {

/// Blocking loopback HTTP/1.1 GET; returns false on any socket or
/// HTTP failure.  Body only (headers stripped).
bool http_get(const std::string& host, int port, const std::string& path,
              std::string& body, std::string& err) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    err = "socket: " + std::string(std::strerror(errno));
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    err = "bad host address: " + host;
    return false;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    err = "connect: " + std::string(std::strerror(errno));
    return false;
  }
  const std::string req = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                          "\r\nConnection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      err = "send: " + std::string(std::strerror(errno));
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0) {
      ::close(fd);
      err = "recv: " + std::string(std::strerror(errno));
      return false;
    }
    if (n == 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t hdr_end = resp.find("\r\n\r\n");
  if (hdr_end == std::string::npos) {
    err = "malformed HTTP response";
    return false;
  }
  // Status line: HTTP/1.1 NNN ...
  const std::size_t sp = resp.find(' ');
  const int status =
      sp != std::string::npos ? std::atoi(resp.c_str() + sp + 1) : 0;
  body = resp.substr(hdr_end + 4);
  if (status != 200) {
    err = "HTTP " + std::to_string(status) + ": " + body;
    return false;
  }
  return true;
}

bool read_file(const std::string& path, std::string& out,
               std::string& err) {
  std::ifstream f(path);
  if (!f) {
    err = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  out = ss.str();
  return true;
}

/// Fixed-width ASCII bar: `[####....]` at `width` fill characters.
std::string bar(double fraction, int width) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const int fill =
      static_cast<int>(std::lround(fraction * static_cast<double>(width)));
  std::string out = "[";
  out.append(static_cast<std::size_t>(fill), '#');
  out.append(static_cast<std::size_t>(width - fill), '.');
  out += "]";
  return out;
}

/// ASCII sparkline over `points`, scaled to the series max (all-zero
/// series renders as spaces).  Pure ASCII so golden tests and dumb
/// terminals agree.
std::string sparkline(const std::vector<double>& points, int width) {
  static const char kLevels[] = " .:-=+*#%@";
  const int nlevels = 9; // indexes 0..9 into kLevels
  if (points.empty()) return std::string(static_cast<std::size_t>(width), ' ');
  double max = 0;
  for (const double v : points) max = std::max(max, v);
  // Tail of the series, one point per column.
  std::string out;
  const std::size_t n = points.size();
  const std::size_t take =
      std::min<std::size_t>(n, static_cast<std::size_t>(width));
  for (std::size_t i = n - take; i < n; ++i) {
    const double f = max > 0 ? points[i] / max : 0;
    const int lvl = static_cast<int>(std::lround(f * nlevels));
    out.push_back(kLevels[std::clamp(lvl, 0, nlevels)]);
  }
  while (out.size() < static_cast<std::size_t>(width)) {
    out.insert(out.begin(), ' ');
  }
  return out;
}

/// Values of the /history series whose labels mention `level_key`
/// (e.g. level="0"); empty when the metric/series is absent.
std::vector<double> series_values(const hmr::json::Value& history,
                                  const std::string& level_key) {
  std::vector<double> out;
  const auto* series = history.find("series");
  if (!series || !series->is_array()) return out;
  for (const auto& s : series->arr) {
    const auto* labels = s.find("labels");
    if (!labels || labels->str.find(level_key) == std::string::npos) {
      continue;
    }
    const auto* pts = s.find("points");
    if (!pts) continue;
    for (const auto& p : pts->arr) {
      if (const auto* v = p.find("value")) out.push_back(v->num_or(0));
    }
  }
  return out;
}

struct Frame {
  hmr::json::Value status;
  hmr::json::Value history; // /history?metric=hmr_tier_used_bytes ({} if n/a)
  bool have_history = false;
  hmr::json::Value cluster; // /cluster/metrics federation ({} if n/a)
  bool have_cluster = false;
};

/// Counter value from a MetricsRegistry JSON object ("counters" array
/// entries {"name","labels","value"}); labels must match exactly.
double counter_value(const hmr::json::Value& metrics, const char* name,
                     const std::string& labels = "") {
  const auto* cs = metrics.find("counters");
  if (!cs || !cs->is_array()) return 0;
  for (const auto& c : cs->arr) {
    const auto* n = c.find("name");
    const auto* l = c.find("labels");
    if (n && n->str == name && (l ? l->str : "") == labels) {
      const auto* v = c.find("value");
      return v ? v->num_or(0) : 0;
    }
  }
  return 0;
}

/// One row of the cluster pane from one node's (or the aggregate's)
/// metrics object.
void cluster_row(const char* label, double weight,
                 const hmr::json::Value& metrics, double busiest_fetch,
                 int width) {
  const double tasks = counter_value(metrics, "hmr_policy_tasks_run_total");
  const double fetch_b =
      counter_value(metrics, "hmr_policy_fetch_bytes_total");
  // Stall split from the attribution counters: everything but compute,
  // as a fraction of attributed wall time.
  static const char* kBuckets[] = {"compute", "fetch_wait", "queue_wait",
                                   "remote_serial", "evict_stall"};
  double wall = 0, stall = 0, worst = 0;
  const char* worst_name = "-";
  for (const char* b : kBuckets) {
    const double ns = counter_value(metrics, "hmr_attrib_ns_total",
                                    "bucket=\"" + std::string(b) + "\"");
    wall += ns;
    if (std::strcmp(b, "compute") == 0) continue;
    stall += ns;
    if (ns > worst) {
      worst = ns;
      worst_name = b;
    }
  }
  std::printf("  %-10s %5.0f %9.0f %10s %s %5.1f%%  %s\n", label, weight,
              tasks,
              hmr::fmt_bytes(static_cast<std::uint64_t>(fetch_b)).c_str(),
              bar(busiest_fetch > 0 ? fetch_b / busiest_fetch : 0, width)
                  .c_str(),
              wall > 0 ? stall / wall * 100 : 0,
              wall > 0 && stall > 0 ? worst_name : "-");
}

/// Cluster pane: one row per federated node snapshot plus the
/// weighted aggregate (see docs/CLUSTER.md and /cluster/metrics).
void render_cluster(const hmr::json::Value& fed, int width) {
  const auto* nodes = fed.find("nodes");
  const auto* total = fed.find("total_nodes");
  std::printf("\nCluster (%d node%s, %zu group%s) — fetch bytes:\n",
              total ? static_cast<int>(total->num_or(0)) : 0,
              total && total->num_or(0) == 1 ? "" : "s",
              nodes && nodes->is_array() ? nodes->arr.size() : 0,
              nodes && nodes->is_array() && nodes->arr.size() == 1 ? ""
                                                                   : "s");
  std::printf("  %-10s %5s %9s %10s %*s %6s  %s\n", "node", "nodes",
              "tasks", "fetch", width + 2, "", "stall", "dominant");
  if (!nodes || !nodes->is_array()) return;
  double busiest = 0;
  for (const auto& n : nodes->arr) {
    if (const auto* m = n.find("metrics")) {
      busiest = std::max(
          busiest, counter_value(*m, "hmr_policy_fetch_bytes_total"));
    }
  }
  for (const auto& n : nodes->arr) {
    const auto* name = n.find("node");
    const auto* weight = n.find("weight");
    const auto* m = n.find("metrics");
    if (!m) continue;
    cluster_row(name ? name->str.c_str() : "?",
                weight ? weight->num_or(1) : 1, *m, busiest, width);
  }
  if (const auto* agg = fed.find("aggregate")) {
    cluster_row("aggregate", total ? total->num_or(0) : 0, *agg, busiest,
                width);
  }
}

void render(const Frame& fr, int top_n, int width) {
  const hmr::json::Value& st = fr.status;
  const auto num = [&](const char* key, double fb) {
    const auto* v = st.find(key);
    return v ? v->num_or(fb) : fb;
  };
  std::printf("hmr_top — t=%.3f s  strategy=%s  sharded=%s\n",
              num("time_s", 0),
              st.find("strategy") ? st.find("strategy")->str.c_str() : "?",
              st.find("sharded") && st.find("sharded")->boolean ? "yes"
                                                                : "no");
  std::printf(
      "tasks=%.0f retired=%.0f outstanding_msgs=%.0f outstanding_ops=%.0f\n",
      num("tasks_executed", 0), num("retired", 0),
      num("outstanding_msgs", 0), num("outstanding_ops", 0));

  // Per-PE panel: queue depth bar (msgs + run_q, scaled to the busiest
  // PE) plus liveness.  Stale beats (age over a second) get flagged.
  const auto* pes = st.find("pes");
  if (pes && pes->is_array() && !pes->arr.empty()) {
    double busiest = 1;
    for (const auto& pe : pes->arr) {
      const double q = (pe.find("msgs") ? pe.find("msgs")->num_or(0) : 0) +
                       (pe.find("run_q") ? pe.find("run_q")->num_or(0) : 0);
      busiest = std::max(busiest, q);
    }
    std::printf("\nPEs (%zu) — queue depth:\n", pes->arr.size());
    for (std::size_t i = 0; i < pes->arr.size(); ++i) {
      const auto& pe = pes->arr[i];
      const double msgs = pe.find("msgs") ? pe.find("msgs")->num_or(0) : 0;
      const double runq =
          pe.find("run_q") ? pe.find("run_q")->num_or(0) : 0;
      const double age =
          pe.find("beat_age_s") ? pe.find("beat_age_s")->num_or(-1) : -1;
      std::printf("  pe%-3zu %s msgs=%-5.0f run_q=%-5.0f%s\n", i,
                  bar((msgs + runq) / busiest, width).c_str(), msgs, runq,
                  age > 1.0 ? "  [stale beat]" : "");
    }
  }

  const auto* tiers = st.find("tiers");
  if (tiers && tiers->is_array()) {
    std::printf("\nTiers:\n");
    for (const auto& t : tiers->arr) {
      const double level = t.find("level") ? t.find("level")->num_or(0) : 0;
      const double used =
          t.find("used_bytes") ? t.find("used_bytes")->num_or(0) : 0;
      const double cap =
          t.find("capacity_bytes") ? t.find("capacity_bytes")->num_or(0)
                                   : 0;
      const double frac = cap > 0 ? used / cap : 0;
      std::string spark;
      if (fr.have_history) {
        const std::string key =
            "level=\"" + std::to_string(static_cast<int>(level)) + "\"";
        spark = sparkline(series_values(fr.history, key), width);
      }
      std::printf("  L%-2d %s %9s / %-9s", static_cast<int>(level),
                  bar(frac, width).c_str(),
                  hmr::fmt_bytes(static_cast<std::uint64_t>(used)).c_str(),
                  cap > 0
                      ? hmr::fmt_bytes(static_cast<std::uint64_t>(cap))
                            .c_str()
                      : "inf");
      if (!spark.empty()) std::printf("  |%s|", spark.c_str());
      std::printf("\n");
    }
  }

  const auto* hot = st.find("hot_blocks");
  if (hot && hot->is_array() && !hot->arr.empty()) {
    std::printf("\nHot blocks (top %d by expected accesses/phase):\n",
                top_n);
    std::printf("  %8s %10s %10s %10s %10s\n", "block", "bytes",
                "hotness", "ro_frac", "reuse");
    int shown = 0;
    for (const auto& b : hot->arr) {
      if (shown++ >= top_n) break;
      std::printf(
          "  %8.0f %10s %10.3f %10.3f %10.1f\n",
          b.find("block") ? b.find("block")->num_or(0) : 0,
          hmr::fmt_bytes(static_cast<std::uint64_t>(
                             b.find("bytes") ? b.find("bytes")->num_or(0)
                                             : 0))
              .c_str(),
          b.find("hotness") ? b.find("hotness")->num_or(0) : 0,
          b.find("readonly_frac") ? b.find("readonly_frac")->num_or(0)
                                  : 0,
          b.find("reuse_distance") ? b.find("reuse_distance")->num_or(0)
                                   : 0);
    }
  }

  const auto* gov = st.find("governor");
  if (gov && gov->is_object()) {
    std::printf(
        "\nGovernor: strategy=%s eager_evict=%s fair_admission=%s "
        "switches=%.0f phases=%.0f\n",
        gov->find("strategy") ? gov->find("strategy")->str.c_str() : "?",
        gov->find("eager_evict") && gov->find("eager_evict")->boolean
            ? "on"
            : "off",
        gov->find("fair_admission") && gov->find("fair_admission")->boolean
            ? "on"
            : "off",
        gov->find("switches") ? gov->find("switches")->num_or(0) : 0,
        gov->find("phases") ? gov->find("phases")->num_or(0) : 0);
  }

  if (fr.have_cluster) render_cluster(fr.cluster, width);

  // Active alerts: the watchdog's latched stall plus its last reason
  // whenever anything has tripped (storm alerts report here too).
  const auto* wd = st.find("watchdog");
  std::printf("\nAlerts:\n");
  bool any = false;
  if (wd && wd->is_object()) {
    const double trips =
        wd->find("trips") ? wd->find("trips")->num_or(0) : 0;
    const bool stalled =
        wd->find("stalled") && wd->find("stalled")->boolean;
    if (stalled) {
      std::printf("  !! STALLED: %s\n",
                  wd->find("last_reason")
                      ? wd->find("last_reason")->str.c_str()
                      : "");
      any = true;
    } else if (trips > 0) {
      std::printf("  !  %.0f watchdog trip(s), last: %s\n", trips,
                  wd->find("last_reason")
                      ? wd->find("last_reason")->str.c_str()
                      : "");
      any = true;
    }
  }
  if (!any) std::printf("  (none)\n");
}

} // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::int64_t port = 0;
  double interval = 2.0;
  bool once = false;
  std::string from;
  std::string history_file;
  bool cluster = false;
  std::string cluster_file;
  std::int64_t top_n = 8;
  std::int64_t width = 24;

  hmr::ArgParser args(
      "hmr_top",
      "Terminal dashboard over a runtime's status port (or saved "
      "/status + /history JSON with --from/--history-file)");
  args.add_flag("host", "status server address", &host);
  args.add_flag("port", "status server port (required unless --from)",
                &port);
  args.add_flag("interval", "refresh period in seconds", &interval);
  args.add_flag("once", "render a single frame and exit", &once);
  args.add_flag("from", "offline mode: read /status JSON from this file",
                &from);
  args.add_flag("history-file",
                "offline mode: read /history?metric=hmr_tier_used_bytes "
                "JSON from this file",
                &history_file);
  args.add_flag("cluster",
                "add the federated per-node pane (/cluster/metrics; "
                "needs Config::cluster_metrics_json wired)",
                &cluster);
  args.add_flag("cluster-file",
                "offline mode: read /cluster/metrics JSON from this file",
                &cluster_file);
  args.add_flag("top", "hot-block rows to show", &top_n);
  args.add_flag("width", "bar/sparkline width in characters", &width);
  if (!args.parse(argc, argv)) return 1;

  const bool offline = !from.empty();
  if (!offline && port <= 0) {
    std::fprintf(stderr, "hmr_top: --port or --from is required\n%s",
                 args.usage().c_str());
    return 1;
  }

  const auto fetch = [&](Frame& fr, std::string& err) {
    std::string status_text;
    if (offline) {
      if (!read_file(from, status_text, err)) return false;
    } else if (!http_get(host, static_cast<int>(port), "/status",
                         status_text, err)) {
      return false;
    }
    std::string jerr;
    if (!hmr::json::parse(status_text, fr.status, &jerr)) {
      err = "bad /status JSON: " + jerr;
      return false;
    }
    std::string hist_text;
    if (offline) {
      std::string ignored;
      fr.have_history = !history_file.empty() &&
                        read_file(history_file, hist_text, ignored);
    } else {
      std::string ignored;
      // 404 just means Config::history_depth=0 — dashboard minus the
      // sparklines, not an error.
      fr.have_history =
          http_get(host, static_cast<int>(port),
                   "/history?metric=hmr_tier_used_bytes", hist_text,
                   ignored);
    }
    if (fr.have_history &&
        !hmr::json::parse(hist_text, fr.history, &jerr)) {
      fr.have_history = false;
    }
    std::string cluster_text;
    if (offline) {
      std::string ignored;
      fr.have_cluster = !cluster_file.empty() &&
                        read_file(cluster_file, cluster_text, ignored);
    } else if (cluster) {
      std::string ignored;
      // 404 = no federation attached; drop the pane, keep the frame.
      fr.have_cluster =
          http_get(host, static_cast<int>(port), "/cluster/metrics",
                   cluster_text, ignored);
    }
    if (fr.have_cluster &&
        !hmr::json::parse(cluster_text, fr.cluster, &jerr)) {
      fr.have_cluster = false;
    }
    return true;
  };

  for (;;) {
    Frame fr;
    std::string err;
    if (!fetch(fr, err)) {
      std::fprintf(stderr, "hmr_top: %s\n", err.c_str());
      return 1;
    }
    if (!once) std::printf("\033[H\033[2J"); // home + clear
    render(fr, static_cast<int>(top_n), static_cast<int>(width));
    std::fflush(stdout);
    if (once || offline) break;
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
  }
  return 0;
}
