// hmr_trace: offline inspector for Tracer CSV dumps.
//
// Reads the CSV written by trace::Tracer::write_csv (header:
// lane,category,start,end,task,src_tier,dst_tier,bytes), prints the
// per-category summary and per-tier-pair traffic table, optionally an
// ASCII timeline, and converts to Chrome-trace/Perfetto JSON
// (telemetry::write_perfetto) for ui.perfetto.dev.
//
//   hmr_trace --in trace.csv
//   hmr_trace --in trace.csv --timeline --width 120
//   hmr_trace --in trace.csv --workers 8 --perfetto out.json
//   hmr_trace --in trace.csv --json          # machine summary to stdout
//   hmr_trace --decisions decisions.csv      # DecisionLog provenance view
//
// --decisions reads the CSV the /decisions?format=csv route serves
// (telemetry::DecisionLog::write_csv) and renders the advisor/governor
// decision history with the inputs that triggered each one.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/perfetto.hpp"
#include "trace/tracer.hpp"
#include "util/argparse.hpp"
#include "util/units.hpp"

namespace {

using hmr::trace::Category;
using hmr::trace::Interval;

bool parse_category(const std::string& s, Category& out) {
  for (int c = 0; c < 6; ++c) {
    if (s == hmr::trace::category_name(static_cast<Category>(c))) {
      out = static_cast<Category>(c);
      return true;
    }
  }
  return false;
}

/// Tracer CSV has no quoted fields: a plain split is a full parser.
std::vector<std::string> split(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (const char ch : line) {
    if (ch == ',') {
      out.push_back(cur);
      cur.clear();
    } else if (ch != '\r') {
      cur.push_back(ch);
    }
  }
  out.push_back(cur);
  return out;
}

bool read_trace(std::istream& is, std::vector<Interval>& out,
                std::uint64_t& dropped, std::uint64_t& ring_fallbacks) {
  std::string line;
  if (!std::getline(is, line)) {
    std::fprintf(stderr, "hmr_trace: empty input\n");
    return false;
  }
  if (split(line) !=
      std::vector<std::string>{"lane", "category", "start", "end", "task",
                               "src_tier", "dst_tier", "bytes"}) {
    std::fprintf(stderr, "hmr_trace: unrecognized header: %s\n",
                 line.c_str());
    return false;
  }
  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Trailer comments from Tracer::write_csv: "# dropped=N"
      // (ring-full losses at dump time) and "# ring_fallbacks=N"
      // (ChunkRing full-ring un-assisted copies).  Match the longer
      // key first -- "ring_fallbacks=" does not contain "dropped=".
      try {
        if (const auto rf = line.find("ring_fallbacks=");
            rf != std::string::npos) {
          ring_fallbacks = std::stoull(line.substr(rf + 15));
        } else if (const auto eq = line.find("dropped=");
                   eq != std::string::npos) {
          dropped = std::stoull(line.substr(eq + 8));
        }
      } catch (const std::exception&) {
        std::fprintf(stderr, "hmr_trace: bad comment at line %zu\n",
                     lineno);
        return false;
      }
      continue;
    }
    const auto f = split(line);
    Interval iv;
    if (f.size() != 8 || !parse_category(f[1], iv.cat)) {
      std::fprintf(stderr, "hmr_trace: bad row at line %zu\n", lineno);
      return false;
    }
    try {
      iv.lane = std::stoi(f[0]);
      iv.start = std::stod(f[2]);
      iv.end = std::stod(f[3]);
      iv.task = std::stoull(f[4]);
      iv.src_tier = static_cast<std::uint32_t>(std::stoul(f[5]));
      iv.dst_tier = static_cast<std::uint32_t>(std::stoul(f[6]));
      iv.bytes = std::stoull(f[7]);
    } catch (const std::exception&) {
      std::fprintf(stderr, "hmr_trace: bad row at line %zu\n", lineno);
      return false;
    }
    out.push_back(iv);
  }
  return true;
}

void print_summary(const hmr::trace::TraceSummary& s,
                   std::int64_t workers, std::uint64_t dropped,
                   std::uint64_t ring_fallbacks) {
  std::printf("span: %.6f s over %d lanes", s.span, s.lanes);
  if (workers >= 0) std::printf(" (workers only)");
  std::printf("\n\n%-10s %14s %10s\n", "category", "lane-seconds",
              "intervals");
  for (int c = 0; c < 6; ++c) {
    const auto cat = static_cast<Category>(c);
    std::printf("%-10s %14.6f %10llu\n", hmr::trace::category_name(cat),
                s.total_of(cat),
                static_cast<unsigned long long>(s.count_of(cat)));
  }
  std::printf("overhead fraction: %.4f\n", s.overhead_fraction());
  std::printf("ring drops: %llu\n",
              static_cast<unsigned long long>(dropped));
  if (dropped > 0) {
    std::fprintf(stderr,
                 "hmr_trace: WARNING: %llu events were dropped at record "
                 "time (ring full) -- every figure above undercounts.  "
                 "Re-run with a larger Tracer::Options::ring_capacity or "
                 "drain more often.\n",
                 static_cast<unsigned long long>(dropped));
  }
  std::printf("copy ring fallbacks: %llu\n",
              static_cast<unsigned long long>(ring_fallbacks));
  if (ring_fallbacks > 0) {
    std::fprintf(stderr,
                 "hmr_trace: WARNING: %llu large copies found every "
                 "ChunkRing slot busy and ran un-assisted (single-thread "
                 "bandwidth).  Prefetch/Evict lane-seconds above are "
                 "slower than the cooperative path would be; consider a "
                 "larger ChunkRing or fewer concurrent migrations.\n",
                 static_cast<unsigned long long>(ring_fallbacks));
  }
  if (s.migrations.empty()) return;
  std::printf("\n%-12s %12s %10s %12s %14s\n", "tier pair", "bytes",
              "copies", "seconds", "effective b/w");
  for (const auto& m : s.migrations) {
    char pair[32];
    std::snprintf(pair, sizeof pair, "%u -> %u", m.src_tier, m.dst_tier);
    std::printf("%-12s %12s %10llu %12.6f %14s\n", pair,
                hmr::fmt_bytes(m.bytes).c_str(),
                static_cast<unsigned long long>(m.count), m.seconds,
                m.seconds > 0
                    ? hmr::fmt_bandwidth(static_cast<double>(m.bytes) /
                                         m.seconds)
                          .c_str()
                    : "-");
  }
}

/// Machine-readable twin of print_summary for scripting and CI.
void print_json(const hmr::trace::TraceSummary& s, std::size_t intervals,
                std::uint64_t dropped, std::uint64_t ring_fallbacks) {
  std::printf("{\"intervals\":%zu,\"span_s\":%.9f,\"lanes\":%d",
              intervals, s.span, s.lanes);
  std::printf(",\"categories\":{");
  for (int c = 0; c < 6; ++c) {
    const auto cat = static_cast<Category>(c);
    std::printf("%s\"%s\":{\"lane_seconds\":%.9f,\"intervals\":%llu}",
                c ? "," : "", hmr::trace::category_name(cat),
                s.total_of(cat),
                static_cast<unsigned long long>(s.count_of(cat)));
  }
  std::printf("},\"overhead_fraction\":%.6f,\"dropped\":%llu"
              ",\"ring_fallbacks\":%llu,\"migrations\":[",
              s.overhead_fraction(),
              static_cast<unsigned long long>(dropped),
              static_cast<unsigned long long>(ring_fallbacks));
  for (std::size_t i = 0; i < s.migrations.size(); ++i) {
    const auto& m = s.migrations[i];
    // effective_bw mirrors the human table's "effective b/w" column
    // (bytes over busy lane-seconds; 0 when no time was recorded).
    std::printf("%s{\"src_tier\":%u,\"dst_tier\":%u,\"bytes\":%llu,"
                "\"count\":%llu,\"seconds\":%.9f,\"effective_bw\":%.3f}",
                i ? "," : "", m.src_tier, m.dst_tier,
                static_cast<unsigned long long>(m.bytes),
                static_cast<unsigned long long>(m.count), m.seconds,
                m.seconds > 0
                    ? static_cast<double>(m.bytes) / m.seconds
                    : 0.0);
  }
  std::printf("]}\n");
}

/// Pretty-print a DecisionLog CSV (/decisions?format=csv).  Governor
/// rows show the phase inputs and the decision (with a marker on
/// changes); advisor rows show the profile inputs and the placement
/// action.  Returns false on malformed input.
bool print_decisions(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    std::fprintf(stderr, "hmr_trace: empty decisions input\n");
    return false;
  }
  const auto header = split(line);
  if (header.size() != 27 || header[0] != "seq" || header[2] != "kind") {
    std::fprintf(stderr,
                 "hmr_trace: unrecognized decisions header (expected the "
                 "/decisions?format=csv columns): %s\n",
                 line.c_str());
    return false;
  }
  std::printf("%6s %12s %-9s %s\n", "seq", "time_s", "kind", "detail");
  std::size_t lineno = 1;
  std::size_t governor_flips = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto f = split(line);
    if (f.size() != 27) {
      std::fprintf(stderr, "hmr_trace: bad decisions row at line %zu\n",
                   lineno);
      return false;
    }
    const std::string& kind = f[2];
    char detail[256];
    if (kind == "governor") {
      const bool changed = f[26] == "1";
      if (changed) ++governor_flips;
      std::snprintf(detail, sizeof detail,
                    "phase=%s wait=%s refetch=%s util=%s -> strategy=%s "
                    "eager=%s fair=%s%s%s",
                    f[13].c_str(), f[15].c_str(), f[16].c_str(),
                    f[17].c_str(), f[21].c_str(), f[22].c_str(),
                    f[23].c_str(), f[20] == "1" ? " (cooldown)" : "",
                    changed ? "  <== CHANGED" : "");
    } else {
      std::snprintf(detail, sizeof detail,
                    "block=%s bytes=%s hotness=%s ro=%s reuse=%s "
                    "break_even=%s pin=%s demote_first=%s bypass=%s",
                    f[3].c_str(), f[4].c_str(), f[5].c_str(),
                    f[6].c_str(), f[7].c_str(), f[8].c_str(),
                    f[9].c_str(), f[10].c_str(), f[11].c_str());
    }
    std::printf("%6s %12s %-9s %s\n", f[0].c_str(), f[1].c_str(),
                kind.c_str(), detail);
  }
  std::printf("\n%zu decision(s), %zu governor change(s)\n", lineno - 1,
              governor_flips);
  return true;
}

} // namespace

int main(int argc, char** argv) {
  std::string in;
  std::string perfetto;
  std::string decisions;
  std::int64_t workers = -1;
  bool timeline = false;
  std::int64_t width = 100;
  bool flows = true;
  bool idle = false;
  bool json = false;

  hmr::ArgParser args("hmr_trace",
                      "Summarize a Tracer CSV dump and convert it to "
                      "Perfetto JSON");
  args.add_flag("in", "trace CSV (from Tracer::write_csv)", &in);
  args.add_flag("perfetto", "write Chrome-trace/Perfetto JSON here",
                &perfetto);
  args.add_flag("workers",
                "worker-lane count: restricts the summary to workers and "
                "names lanes PE/IO in the JSON (-1 = all lanes)",
                &workers);
  args.add_flag("timeline", "print an ASCII timeline", &timeline);
  args.add_flag("width", "timeline width in characters", &width);
  args.add_flag("flows", "emit causal task flow events (--flows=false "
                         "to disable)",
                &flows);
  args.add_flag("idle", "include idle intervals in the JSON", &idle);
  args.add_flag("json",
                "print the summary as JSON instead of tables (category "
                "totals, tier-pair traffic, drop counters)",
                &json);
  args.add_flag("decisions",
                "DecisionLog CSV (from /decisions?format=csv): print the "
                "decision provenance view and exit",
                &decisions);
  if (!args.parse(argc, argv)) return 1;

  if (!decisions.empty()) {
    std::ifstream dfs(decisions);
    if (!dfs) {
      std::fprintf(stderr, "hmr_trace: cannot open %s\n",
                   decisions.c_str());
      return 1;
    }
    return print_decisions(dfs) ? 0 : 1;
  }

  if (in.empty()) {
    std::fprintf(stderr, "hmr_trace: --in is required\n%s",
                 args.usage().c_str());
    return 1;
  }

  std::ifstream ifs(in);
  if (!ifs) {
    std::fprintf(stderr, "hmr_trace: cannot open %s\n", in.c_str());
    return 1;
  }
  std::vector<Interval> ivs;
  std::uint64_t dropped = 0;
  std::uint64_t ring_fallbacks = 0;
  if (!read_trace(ifs, ivs, dropped, ring_fallbacks)) return 1;

  // Re-inject into a serial-mode Tracer to reuse its summary and
  // timeline code (serial: no ring capacity to size for a file of
  // unknown length).
  hmr::trace::Tracer::Options topt;
  topt.serial = true;
  hmr::trace::Tracer tracer(true, topt);
  double t0 = 0, t1 = 0;
  for (std::size_t i = 0; i < ivs.size(); ++i) {
    const auto& iv = ivs[i];
    tracer.record_migration(iv.lane, iv.cat, iv.start, iv.end, iv.task,
                            iv.src_tier, iv.dst_tier, iv.bytes);
    t0 = i == 0 ? iv.start : std::min(t0, iv.start);
    t1 = i == 0 ? iv.end : std::max(t1, iv.end);
  }

  if (json) {
    print_json(tracer.summarize(static_cast<std::int32_t>(workers)),
               ivs.size(), dropped, ring_fallbacks);
  } else {
    std::printf("%s: %zu intervals\n", in.c_str(), ivs.size());
    print_summary(tracer.summarize(static_cast<std::int32_t>(workers)),
                  workers, dropped, ring_fallbacks);
  }

  if (timeline && t1 > t0) {
    std::printf("\n");
    tracer.ascii_timeline(std::cout, static_cast<int>(width), t0, t1);
  }

  if (!perfetto.empty()) {
    std::ofstream ofs(perfetto);
    if (!ofs) {
      std::fprintf(stderr, "hmr_trace: cannot write %s\n",
                   perfetto.c_str());
      return 1;
    }
    hmr::telemetry::PerfettoOptions popt;
    popt.worker_lanes = static_cast<std::int32_t>(workers);
    popt.flows = flows;
    popt.idle = idle;
    hmr::telemetry::write_perfetto(ofs, tracer.intervals(), popt);
    std::printf("\nwrote %s (open in ui.perfetto.dev)\n",
                perfetto.c_str());
  }
  return 0;
}
